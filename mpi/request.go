package mpi

import "fmt"

type reqKind uint8

const (
	rkSend reqKind = iota
	rkRecv
	rkColl
	rkPersistSend
	rkPersistRecv
)

// Request is a non-blocking operation handle. Persistent requests
// (from *_init) stay allocated across Start/Wait cycles.
type Request struct {
	proc   *Proc
	handle int64
	kind   reqKind

	// guarded by proc.mu
	done      bool
	status    Status
	availAt   int64 // virtual time at which the result is available
	cancelled bool
	active    bool // persistent: between Start and completion

	persistent bool
	restart    func(r *Request) // persistent operation body

	// recv bookkeeping so Cancel can withdraw the post
	post *recvPost

	// target describes what completing this request depends on, for
	// the deadlock report when the owner blocks in a Wait.
	target *waitTarget
}

// Handle returns the runtime handle of the request.
func (r *Request) Handle() int64 { return r.handle }

// newRequest allocates a request owned by p.
func (p *Proc) newRequest(kind reqKind) *Request {
	return &Request{proc: p, handle: p.newHandle(), kind: kind}
}

// complete marks the request done and wakes the owner's waiters.
// Called with any rank's goroutine.
func (r *Request) complete(st Status, availAt int64) {
	p := r.proc
	p.world.progress.Add(1)
	p.mu.Lock()
	r.done = true
	r.status = st
	r.availAt = availAt
	r.active = false
	p.cond.Broadcast()
	p.mu.Unlock()
}

// isDone reports completion status under the owner's lock.
func (r *Request) isDone() bool {
	r.proc.mu.Lock()
	defer r.proc.mu.Unlock()
	return r.done
}

// consume finalizes a completed request: non-persistent requests are
// deactivated (the MPI library frees them); persistent ones are reset
// to inactive. Returns the status. Caller holds no locks.
func (r *Request) consume() Status {
	p := r.proc
	p.mu.Lock()
	st := r.status
	avail := r.availAt
	r.done = false
	if !r.persistent {
		r.post = nil
		r.restart = nil
	}
	p.mu.Unlock()
	p.raiseClock(avail)
	return st
}

// waitDone blocks until the request completes. Runs on the owning
// rank's goroutine: it registers the wait in the deadlock registry and
// unwinds (panicking jobRevoked) if the job halts meanwhile.
func (r *Request) waitDone() {
	p := r.proc
	defer p.world.setBlocked(p, r.target)()
	p.mu.Lock()
	defer p.mu.Unlock()
	for !r.done {
		p.world.checkRevoked()
		p.cond.Wait()
	}
}

// anyTarget is the wait target of a Waitany/Waitsome over rs: the
// union of the pending requests' targets, evaluated at report time.
func anyTarget(p *Proc, rs []*Request) *waitTarget {
	return &waitTarget{
		detail: fmt.Sprintf("%d requests", len(rs)),
		peers: func() []int {
			p.mu.Lock()
			defer p.mu.Unlock()
			seen := map[int]bool{}
			var out []int
			for _, r := range rs {
				if r == nil || r.done || r.target == nil || r.target.peers == nil {
					continue
				}
				for _, wr := range r.target.peers() {
					if !seen[wr] {
						seen[wr] = true
						out = append(out, wr)
					}
				}
			}
			return out
		},
	}
}

// waitAnyDone blocks until at least one request in rs is done and
// returns its index. Nil or inactive requests are skipped; if all are
// nil/inactive, returns -1 immediately (MPI returns MPI_UNDEFINED).
func waitAnyDone(p *Proc, rs []*Request) int {
	defer p.world.setBlocked(p, anyTarget(p, rs))()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		anyLive := false
		for i, r := range rs {
			if r == nil {
				continue
			}
			if r.done {
				return i
			}
			if !r.persistent || r.active {
				anyLive = true
			}
		}
		if !anyLive {
			return -1
		}
		p.world.checkRevoked()
		p.cond.Wait()
	}
}

// --- Public completion calls -------------------------------------------------

// Wait blocks until the request completes; status may be nil
// (MPI_STATUS_IGNORE).
func (p *Proc) Wait(r *Request, status *Status) error {
	if r == nil {
		return fmt.Errorf("mpi: Wait on nil request")
	}
	args := []Value{vReq(r), vStatus()}
	var st Status
	p.icall(fWait, args, func() {
		r.waitDone()
		st = r.consume()
		setStatus(&args[1], st)
	})
	if status != nil {
		*status = st
	}
	return nil
}

// Test checks for completion without blocking.
func (p *Proc) Test(r *Request, status *Status) (bool, error) {
	if r == nil {
		return false, fmt.Errorf("mpi: Test on nil request")
	}
	args := []Value{vReq(r), vInt(0), vStatus()}
	var flag bool
	var st Status
	p.icall(fTest, args, func() {
		if r.isDone() {
			flag = true
			st = r.consume()
			setStatus(&args[2], st)
		}
		args[1].I = b2i(flag)
	})
	if status != nil && flag {
		*status = st
	}
	return flag, nil
}

// Waitall blocks until every request completes.
func (p *Proc) Waitall(rs []*Request, statuses []Status) error {
	args := []Value{vInt(len(rs)), vReqArray(rs), vStatArray()}
	sts := make([]Status, len(rs))
	p.icall(fWaitall, args, func() {
		for i, r := range rs {
			if r == nil {
				continue
			}
			r.waitDone()
			sts[i] = r.consume()
		}
		setStatArray(&args[2], sts)
	})
	copy(statuses, sts)
	return nil
}

// Waitany blocks until one request completes; returns its index, or
// Undefined if no active request exists.
func (p *Proc) Waitany(rs []*Request, status *Status) (int, error) {
	args := []Value{vInt(len(rs)), vReqArray(rs), vInt(0), vStatus()}
	idx := Undefined
	var st Status
	p.icall(fWaitany, args, func() {
		if i := waitAnyDone(p, rs); i >= 0 {
			idx = i
			st = rs[i].consume()
			setStatus(&args[3], st)
		}
		args[2].I = int64(idx)
	})
	if status != nil && idx >= 0 {
		*status = st
	}
	return idx, nil
}

// Waitsome blocks until at least one request completes and returns the
// indices of all completed ones (or nil if none active).
func (p *Proc) Waitsome(rs []*Request, statuses []Status) ([]int, error) {
	args := []Value{vInt(len(rs)), vReqArray(rs), vInt(0), vIndexArray(), vStatArray()}
	var idx []int
	var sts []Status
	p.icall(fWaitsome, args, func() {
		if first := waitAnyDone(p, rs); first >= 0 {
			for i, r := range rs {
				if r != nil && r.isDone() {
					st := r.consume()
					idx = append(idx, i)
					sts = append(sts, st)
				}
			}
		}
		args[2].I = int64(len(idx))
		setIndexArray(&args[3], idx)
		setStatArray(&args[4], sts)
	})
	copy(statuses, sts)
	return idx, nil
}

// Testall reports whether all requests are complete, consuming them if
// so.
func (p *Proc) Testall(rs []*Request, statuses []Status) (bool, error) {
	args := []Value{vInt(len(rs)), vReqArray(rs), vInt(0), vStatArray()}
	all := true
	var sts []Status
	p.icall(fTestall, args, func() {
		for _, r := range rs {
			if r != nil && !r.isDone() {
				all = false
				break
			}
		}
		if all {
			sts = make([]Status, len(rs))
			for i, r := range rs {
				if r != nil {
					sts[i] = r.consume()
				}
			}
			setStatArray(&args[3], sts)
		}
		args[2].I = b2i(all)
	})
	if all {
		copy(statuses, sts)
	}
	return all, nil
}

// Testany checks whether any request is complete.
func (p *Proc) Testany(rs []*Request, status *Status) (idx int, flag bool, err error) {
	args := []Value{vInt(len(rs)), vReqArray(rs), vInt(0), vInt(0), vStatus()}
	idx = Undefined
	var st Status
	p.icall(fTestany, args, func() {
		for i, r := range rs {
			if r != nil && r.isDone() {
				idx = i
				flag = true
				st = r.consume()
				setStatus(&args[4], st)
				break
			}
		}
		args[2].I = int64(idx)
		args[3].I = b2i(flag)
	})
	if status != nil && flag {
		*status = st
	}
	return idx, flag, nil
}

// Testsome returns the indices of currently completed requests
// (possibly empty), consuming them.
func (p *Proc) Testsome(rs []*Request, statuses []Status) ([]int, error) {
	args := []Value{vInt(len(rs)), vReqArray(rs), vInt(0), vIndexArray(), vStatArray()}
	var idx []int
	var sts []Status
	p.icall(fTestsome, args, func() {
		for i, r := range rs {
			if r != nil && r.isDone() {
				st := r.consume()
				idx = append(idx, i)
				sts = append(sts, st)
			}
		}
		args[2].I = int64(len(idx))
		setIndexArray(&args[3], idx)
		setStatArray(&args[4], sts)
	})
	copy(statuses, sts)
	return idx, nil
}

// RequestFree releases a request; an active operation still completes
// in the background (as in MPI).
func (p *Proc) RequestFree(r *Request) error {
	if r == nil {
		return fmt.Errorf("mpi: RequestFree on nil request")
	}
	args := []Value{vReq(r)}
	p.icall(fRequestFree, args, func() {
		p.mu.Lock()
		r.restart = nil
		r.persistent = false
		p.mu.Unlock()
	})
	return nil
}

// RequestGetStatus checks completion without consuming the request.
func (p *Proc) RequestGetStatus(r *Request, status *Status) (bool, error) {
	if r == nil {
		return false, fmt.Errorf("mpi: RequestGetStatus on nil request")
	}
	args := []Value{vReq(r), vInt(0), vStatus()}
	var flag bool
	var st Status
	p.icall(fRequestGetStatus, args, func() {
		p.mu.Lock()
		flag = r.done
		st = r.status
		p.mu.Unlock()
		args[1].I = b2i(flag)
		if flag {
			setStatus(&args[2], st)
		}
	})
	if status != nil && flag {
		*status = st
	}
	return flag, nil
}

// Cancel attempts to cancel a pending receive (sends are not
// cancellable in this simulator, as in most MPI implementations).
func (p *Proc) Cancel(r *Request) error {
	if r == nil {
		return fmt.Errorf("mpi: Cancel on nil request")
	}
	args := []Value{vReq(r)}
	p.icall(fCancel, args, func() {
		if r.post != nil {
			if r.post.withdraw() {
				r.proc.mu.Lock()
				r.done = true
				r.cancelled = true
				r.status = Status{Source: Undefined, Tag: Undefined, Cancelled: true}
				r.proc.cond.Broadcast()
				r.proc.mu.Unlock()
			}
		}
	})
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
