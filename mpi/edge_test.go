package mpi

import (
	"testing"
	"time"
)

func TestRunRejectsBadWorldSize(t *testing.T) {
	if err := Run(0, func(p *Proc) {}); err == nil {
		t.Fatal("world size 0 accepted")
	}
	if err := Run(-3, func(p *Proc) {}); err == nil {
		t.Fatal("negative world size accepted")
	}
}

func TestRunTimeoutOnDeadlock(t *testing.T) {
	err := RunOpt(2, Options{Timeout: 200 * time.Millisecond}, func(p *Proc) {
		buf := p.Alloc(4)
		// Both ranks receive, nobody sends: guaranteed deadlock.
		p.Recv(buf.Ptr(0), 1, Int, 1-p.Rank(), 0, p.World(), nil)
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestAbortPropagates(t *testing.T) {
	err := RunOpt(2, Options{Timeout: 10 * time.Second}, func(p *Proc) {
		if p.Rank() == 1 {
			p.Abort(p.World(), 13)
		}
	})
	if err == nil {
		t.Fatal("MPI_Abort did not abort the run")
	}
}

func TestSelfMessaging(t *testing.T) {
	run(t, 2, func(p *Proc) {
		// Send to self on MPI_COMM_SELF.
		buf := p.Alloc(4)
		putInt32(buf.Bytes(), int32(p.Rank()+40))
		if err := p.Send(buf.Ptr(0), 1, Int, 0, 0, p.Self()); err != nil {
			t.Error(err)
		}
		out := p.Alloc(4)
		if err := p.Recv(out.Ptr(0), 1, Int, 0, 0, p.Self(), nil); err != nil {
			t.Error(err)
		}
		if getInt32(out.Bytes()) != int32(p.Rank()+40) {
			t.Error("self message corrupted")
		}
	})
}

func TestInvalidRankRejected(t *testing.T) {
	run(t, 2, func(p *Proc) {
		buf := p.Alloc(4)
		if err := p.Send(buf.Ptr(0), 1, Int, 99, 0, p.World()); err == nil {
			t.Error("out-of-range destination accepted")
		}
	})
}

func TestZeroCountMessages(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			if err := p.Send(buf.Ptr(0), 0, Int, 1, 0, w); err != nil {
				t.Error(err)
			}
		} else {
			var st Status
			if err := p.Recv(buf.Ptr(0), 0, Int, 0, 0, w, &st); err != nil {
				t.Error(err)
			}
			if st.Count != 0 {
				t.Errorf("zero-count message delivered %d bytes", st.Count)
			}
		}
	})
}

func TestTruncatedReceive(t *testing.T) {
	// Receiving into a smaller count than sent: only the posted count
	// is delivered (this simulator truncates rather than erroring).
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(16)
		if p.Rank() == 0 {
			for i := 0; i < 4; i++ {
				putInt32(buf.Bytes()[i*4:], int32(i+1))
			}
			p.Send(buf.Ptr(0), 4, Int, 1, 0, w)
		} else {
			var st Status
			p.Recv(buf.Ptr(0), 2, Int, 0, 0, w, &st)
			if st.Count != 8 {
				t.Errorf("truncated recv count = %d", st.Count)
			}
		}
	})
}

func TestBufferPtrBounds(t *testing.T) {
	run(t, 1, func(p *Proc) {
		buf := p.Alloc(16)
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Ptr offset accepted")
			}
		}()
		buf.Ptr(17)
	})
}

func TestDoubleFreeBufferIsNoop(t *testing.T) {
	count := &countingHooks{}
	err := RunOpt(1, Options{Interceptors: []Interceptor{count}, Timeout: 5 * time.Second}, func(p *Proc) {
		b := p.Alloc(8)
		b.Free()
		b.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.frees != 1 {
		t.Fatalf("double free reported %d times", count.frees)
	}
}

type countingHooks struct {
	allocs, frees int
}

func (c *countingHooks) Pre(rec *CallRecord)                      {}
func (c *countingHooks) Post(rec *CallRecord)                     {}
func (c *countingHooks) MemAlloc(addr, size uint64, device int32) { c.allocs++ }
func (c *countingHooks) MemFree(addr uint64)                      { c.frees++ }

func TestDeviceAllocation(t *testing.T) {
	run(t, 1, func(p *Proc) {
		b := p.AllocDevice(64, 2)
		if b.Device() != 2 {
			t.Errorf("device = %d", b.Device())
		}
		if b.Len() != 64 {
			t.Errorf("len = %d", b.Len())
		}
	})
}

func TestNegativeAllocPanics(t *testing.T) {
	err := RunOpt(1, Options{Timeout: 5 * time.Second}, func(p *Proc) {
		p.Alloc(-1)
	})
	if err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestDimsCreateErrors(t *testing.T) {
	run(t, 1, func(p *Proc) {
		// Over-constrained: fixed dims that do not divide nnodes.
		dims := []int{5, 0}
		if err := p.DimsCreate(12, 2, dims); err == nil {
			t.Error("non-dividing fixed dim accepted")
		}
		if err := p.DimsCreate(12, 3, []int{0, 0}); err == nil {
			t.Error("short dims slice accepted")
		}
	})
}

func TestCartCreateErrors(t *testing.T) {
	run(t, 4, func(p *Proc) {
		if _, err := p.CartCreate(p.World(), []int{5, 5}, []bool{false, false}, false); err == nil {
			t.Error("oversized grid accepted")
		}
		if _, err := p.CartCreate(p.World(), []int{0}, []bool{false}, false); err == nil {
			t.Error("zero dimension accepted")
		}
		// Non-cart comm queried for topology.
		if _, err := p.CartCoords(p.World(), 0); err == nil {
			t.Error("CartCoords on non-cart comm accepted")
		}
	})
}

func TestCartCreateExtraRanksGetNil(t *testing.T) {
	run(t, 5, func(p *Proc) {
		cart, err := p.CartCreate(p.World(), []int{2, 2}, []bool{false, false}, false)
		if err != nil {
			t.Fatal(err)
		}
		if p.Rank() == 4 && cart != nil {
			t.Error("rank beyond the grid should get nil")
		}
		if p.Rank() < 4 && cart == nil {
			t.Error("grid member got nil comm")
		}
	})
}

func TestGroupInclErrors(t *testing.T) {
	run(t, 2, func(p *Proc) {
		g, _ := p.CommGroup(p.World())
		if _, err := p.GroupIncl(g, []int{5}); err == nil {
			t.Error("out-of-range group rank accepted")
		}
		if _, err := p.GroupExcl(g, []int{-1}); err == nil {
			t.Error("negative group rank accepted")
		}
	})
}

func TestDeterministicVirtualClock(t *testing.T) {
	// Equal seeds must produce identical virtual timelines.
	trace := func(seed int64) []int64 {
		var times []int64
		err := RunOpt(2, Options{Seed: seed, Timeout: 10 * time.Second}, func(p *Proc) {
			buf := p.Alloc(4)
			for i := 0; i < 5; i++ {
				p.Compute(1000)
				p.Barrier(p.World())
			}
			if p.Rank() == 0 {
				p.Send(buf.Ptr(0), 1, Int, 1, 0, p.World())
				times = append(times, p.Now())
			} else {
				p.Recv(buf.Ptr(0), 1, Int, 0, 0, p.World(), nil)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return times
	}
	a := trace(42)
	b := trace(42)
	c := trace(43)
	if a[0] != b[0] {
		t.Fatalf("same seed diverged: %d vs %d", a[0], b[0])
	}
	if a[0] == c[0] {
		t.Fatal("different seeds produced identical noise (suspicious)")
	}
}

func TestStartOnNonPersistentRejected(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		req, _ := p.Isend(buf.Ptr(0), 1, Int, ProcNull, 0, w)
		if err := p.Start(req); err == nil {
			t.Error("Start on non-persistent request accepted")
		}
		p.Wait(req, nil)
		if err := p.Startall([]*Request{nil}); err == nil {
			t.Error("Startall with nil accepted")
		}
	})
}

func TestRequestGetStatusDoesNotConsume(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			p.Send(buf.Ptr(0), 1, Int, 1, 3, w)
		} else {
			req, _ := p.Irecv(buf.Ptr(0), 1, Int, 0, 3, w)
			// Poll without consuming until complete.
			for {
				done, err := p.RequestGetStatus(req, nil)
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				yield()
			}
			// The request is still live and must be waitable.
			var st Status
			if err := p.Wait(req, &st); err != nil {
				t.Fatal(err)
			}
			if st.Source != 0 || st.Tag != 3 {
				t.Errorf("status after GetStatus+Wait: %+v", st)
			}
		}
	})
}

func TestStackVarNotReportedToInterceptor(t *testing.T) {
	count := &countingHooks{}
	err := RunOpt(1, Options{Interceptors: []Interceptor{count}, Timeout: 5 * time.Second}, func(p *Proc) {
		_ = p.StackVar(64)
		_ = p.Alloc(64)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.allocs != 1 {
		t.Fatalf("stack variable leaked into MemAlloc hooks: %d", count.allocs)
	}
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	// 512 goroutine ranks doing a few collective rounds.
	err := RunOpt(512, Options{Timeout: 2 * time.Minute}, func(p *Proc) {
		buf := p.Alloc(8)
		out := p.Alloc(8)
		for i := 0; i < 5; i++ {
			if err := p.Allreduce(buf.Ptr(0), out.Ptr(0), 1, Double, OpSum, p.World()); err != nil {
				panic(err)
			}
			if err := p.Barrier(p.World()); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCompareStates(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		if c, _ := p.CommCompare(w, w); c != Ident {
			t.Errorf("self-compare = %d", c)
		}
		dup, _ := p.CommDup(w)
		if c, _ := p.CommCompare(w, dup); c != Congruent {
			t.Errorf("dup compare = %d", c)
		}
		sub, _ := p.CommSplit(w, p.Rank()%2, p.Rank())
		if c, _ := p.CommCompare(w, sub); c != Unequal {
			t.Errorf("split compare = %d", c)
		}
	})
}

func TestRealloc(t *testing.T) {
	count := &countingHooks{}
	err := RunOpt(1, Options{Interceptors: []Interceptor{count}, Timeout: 5 * time.Second}, func(p *Proc) {
		b := p.Alloc(8)
		putInt32(b.Bytes(), 77)
		nb := p.Realloc(b, 64)
		if getInt32(nb.Bytes()) != 77 {
			t.Error("realloc lost the prefix")
		}
		if nb.Len() != 64 {
			t.Errorf("realloc size = %d", nb.Len())
		}
		if nb.Addr() == b.Addr() {
			t.Error("realloc should move in this simulator")
		}
		// Realloc of a freed buffer degrades to a fresh allocation.
		nb2 := p.Realloc(nil, 16)
		if nb2.Len() != 16 {
			t.Error("nil realloc failed")
		}
		nb.Free()
		nb2.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.allocs != 3 || count.frees != 3 {
		t.Fatalf("hooks saw %d allocs, %d frees", count.allocs, count.frees)
	}
}
