package mpi

import "fmt"

// Out-of-band collectives: the PMPI-level operations a tracer may
// perform for its own bookkeeping without the calls being intercepted
// (Pilgrim §3.3.1 issues a PMPI all-reduce to agree on communicator
// symbolic ids). They use a sequence space separate from application
// collectives so they can never be confused with traced operations.

// AllreduceMaxInt32 performs a blocking max-allreduce of v over the
// communicator identified by commHandle. For inter-communicators the
// reduction spans the union of both groups (the merge trick of
// §3.3.1). Implements mpispec.OOB.
func (p *Proc) AllreduceMaxInt32(commHandle int64, v int32) int32 {
	c := p.lookupComm(commHandle)
	if c == nil {
		panic(fmt.Sprintf("mpi: OOB allreduce on unknown comm handle %d (rank %d)", commHandle, p.rank))
	}
	return p.oobAllreduceMax(c, v, true)
}

// oobAllreduceMax blocks in a rendezvous over c's members. register
// must be true only when called on the rank's own goroutine (the
// deadlock registry holds one entry per rank); the non-blocking
// variant runs on a background goroutine and passes false.
func (p *Proc) oobAllreduceMax(c *Comm, v int32, register bool) int32 {
	need := len(c.group)
	if c.remote != nil {
		need += len(c.remote)
	}
	seq := c.oobSeq.Add(1)
	key := collKey{ctx: c.ctx, seq: seq, oob: true}
	if register {
		members := make([]int, 0, need)
		members = append(members, c.group...)
		members = append(members, c.remote...)
		defer p.world.setBlocked(p, collTargetWorldKeyed(p.world, key, members, p.rank, c.name+" (OOB)"))()
	}
	res, _ := p.world.rendezvous(key, need, p.rank, p.clock.Load(), v, func(m map[int]any) any {
		best := int32(-1 << 31)
		for _, x := range m {
			if xv := x.(int32); xv > best {
				best = xv
			}
		}
		return best
	})
	return res.(int32)
}

// IAllreduceMaxInt32 starts a non-blocking OOB max-allreduce and
// returns a token for PollOOB. Implements mpispec.OOB.
func (p *Proc) IAllreduceMaxInt32(commHandle int64, v int32) int64 {
	c := p.lookupComm(commHandle)
	if c == nil {
		panic(fmt.Sprintf("mpi: OOB iallreduce on unknown comm handle %d (rank %d)", commHandle, p.rank))
	}
	p.oobMu.Lock()
	p.oobSeq++
	token := p.oobSeq
	op := &oobOp{}
	p.oobPending[token] = op
	p.oobMu.Unlock()
	p.goBackground(func() {
		r := p.oobAllreduceMax(c, v, false)
		p.oobMu.Lock()
		op.result = r
		op.done = true
		p.oobMu.Unlock()
		// Wake any tracer polling from a Wait* epilogue.
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	return token
}

// PollOOB reports completion of a non-blocking OOB operation.
// Implements mpispec.OOB.
func (p *Proc) PollOOB(token int64) (bool, int32) {
	p.oobMu.Lock()
	defer p.oobMu.Unlock()
	op := p.oobPending[token]
	if op == nil {
		return false, 0
	}
	if op.done {
		delete(p.oobPending, token)
		return true, op.result
	}
	return false, 0
}
