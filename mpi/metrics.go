package mpi

import (
	"errors"
	"strconv"

	"github.com/hpcrepro/pilgrim/internal/metrics"
)

// Self-observability wiring for the simulated runtime. When a run has
// a metrics.Collector attached (Options.Metrics, set automatically by
// pilgrim.RunSim), the world publishes per-rank message/byte/collective
// counters, a blocked-time histogram fed from the blocked-operation
// registry, fault-injection event counters, and — at halt — rank
// failure counters classified through *RunError's error tree. With no
// collector attached every hook is a nil check.

// runMetrics is one run's pre-resolved metric handles: label lookups
// happen once at world construction, never on a message path.
type runMetrics struct {
	col     *metrics.Collector
	perRank []rankMetrics
}

type rankMetrics struct {
	msgs  *metrics.Counter
	bytes *metrics.Counter
	colls *metrics.Counter
}

func newRunMetrics(col *metrics.Collector, n int) *runMetrics {
	if col == nil {
		return nil
	}
	rm := &runMetrics{col: col, perRank: make([]rankMetrics, n)}
	for i := 0; i < n; i++ {
		r := strconv.Itoa(i)
		rm.perRank[i] = rankMetrics{
			msgs:  col.MsgsSent.With(r),
			bytes: col.BytesSent.With(r),
			colls: col.Collectives.With(r),
		}
	}
	return rm
}

// noteSend counts one posted point-to-point envelope.
func (rm *runMetrics) noteSend(rank, payload int) {
	rm.perRank[rank].msgs.Inc()
	rm.perRank[rank].bytes.Add(int64(payload))
}

// noteCollective counts one collective participation.
func (rm *runMetrics) noteCollective(rank int) {
	rm.perRank[rank].colls.Inc()
}

// noteFault counts one fired fault-injection event.
func (rm *runMetrics) noteFault(k FaultKind) {
	rm.col.FaultEvents.With(k.String()).Inc()
}

// classifyRankError names a rank failure for the failure counters. It
// leans on the error tree *RunError exposes: rank errors wrap
// ErrRevoked, *CrashError, *AbortError, or *PanicError.
func classifyRankError(err error) string {
	var ce *CrashError
	var ae *AbortError
	var pe *PanicError
	switch {
	case errors.Is(err, ErrRevoked):
		return "revoked"
	case errors.As(err, &ce):
		return "crash"
	case errors.As(err, &ae):
		return "abort"
	case errors.As(err, &pe):
		return "panic"
	}
	return "other"
}

// recordRunFailure publishes the classified failure counters for a
// finished run. err is whatever RunOpt is about to return.
func (rm *runMetrics) recordRunFailure(err error) {
	if err == nil {
		return
	}
	var re *RunError
	if !errors.As(err, &re) {
		rm.col.RankFailures.With("other").Inc()
		return
	}
	var de *DeadlockError
	if errors.As(re.Cause, &de) {
		rm.col.Deadlocks.Inc()
	}
	for _, r := range re.FailedRanks() {
		rm.col.RankFailures.With(classifyRankError(re.Ranks[r])).Inc()
	}
}
