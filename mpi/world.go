package mpi

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// World is one simulated MPI job: n ranks, a message router, and the
// rendezvous state for collectives.
type World struct {
	n     int
	procs []*Proc

	mbMu  sync.Mutex
	boxes map[mbKey]*mailbox

	collMu sync.Mutex
	colls  map[collKey]*collSlot

	ctxSeq atomic.Int64
	seed   int64
}

type mbKey struct {
	ctx  int64
	dest int // world rank
}

type collKey struct {
	ctx int64
	seq int64
	oob bool
}

// Proc is one simulated MPI process. All MPI operations hang off it;
// it is confined to the goroutine running the rank's body (the runtime
// itself synchronizes cross-rank effects).
type Proc struct {
	rank  int
	world *World

	interceptor mpispec.Interceptor

	mu   sync.Mutex
	cond *sync.Cond // broadcast whenever any of this proc's requests completes

	clock         atomic.Int64 // virtual time, ns
	rng           *rand.Rand
	computeFactor float64

	nextAddr   uint64
	nextStack  uint64
	nextHandle int64

	commsMu sync.Mutex
	comms   map[int64]*Comm // handle -> comm, for OOB lookups

	oobMu      sync.Mutex
	oobPending map[int64]*oobOp
	oobSeq     int64

	worldComm *Comm
	selfComm  *Comm

	initialized bool
	finalized   bool
}

type oobOp struct {
	done   bool
	result int32
}

// Options configures a simulated run.
type Options struct {
	// Seed drives the per-rank noise model; runs with equal seeds see
	// identical virtual timing. Zero means seed 1.
	Seed int64
	// Timeout aborts a deadlocked run. Zero means 2 minutes.
	Timeout time.Duration
	// Interceptors, if non-nil, is indexed by rank and attached before
	// the body runs (so MPI_Init is already traced).
	Interceptors []mpispec.Interceptor
	// ComputeFactor makes Proc.Compute burn real CPU time: a call to
	// Compute(d) busy-spins for d*ComputeFactor nanoseconds of wall
	// time in addition to advancing the virtual clock. Zero keeps
	// compute purely virtual (the default; size experiments need no
	// real work). Overhead experiments set it so tracing cost is
	// measured against a realistic application denominator.
	ComputeFactor float64
}

// Run executes body as an SPMD program on n simulated ranks and blocks
// until every rank returns. A panic in any rank aborts the run and is
// returned as an error.
func Run(n int, body func(p *Proc)) error {
	return RunOpt(n, Options{}, body)
}

// RunOpt is Run with explicit options.
func RunOpt(n int, opts Options, body func(p *Proc)) error {
	if n <= 0 {
		return fmt.Errorf("mpi: invalid world size %d", n)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	w := &World{
		n:     n,
		boxes: make(map[mbKey]*mailbox),
		colls: make(map[collKey]*collSlot),
		seed:  seed,
	}
	w.ctxSeq.Store(hDynamicBase) // context ids share the reserved space above predefined handles
	w.procs = make([]*Proc, n)
	worldGroup := make([]int, n)
	for i := range worldGroup {
		worldGroup[i] = i
	}
	for i := 0; i < n; i++ {
		p := &Proc{
			rank:          i,
			world:         w,
			computeFactor: opts.ComputeFactor,
			rng:           rand.New(rand.NewSource(seed + int64(i)*7919)),
			// Address-space bases diverge per rank, as real heaps do
			// (ASLR, allocation history): absolute addresses are
			// rank-specific, symbolic segment ids are not.
			nextAddr:   0x10000 + uint64(i)*0x0010_0000,
			nextStack:  0x7f00_0000_0000 + uint64(i)*0x0100_0000,
			nextHandle: hDynamicBase,
			comms:      make(map[int64]*Comm),
			oobPending: make(map[int64]*oobOp),
		}
		p.cond = sync.NewCond(&p.mu)
		p.worldComm = &Comm{proc: p, handle: hCommWorld, ctx: hCommWorld, group: worldGroup, myRank: i, name: "MPI_COMM_WORLD"}
		p.selfComm = &Comm{proc: p, handle: hCommSelf, ctx: hCommSelf, group: []int{i}, myRank: 0, name: "MPI_COMM_SELF"}
		p.comms[hCommWorld] = p.worldComm
		p.comms[hCommSelf] = p.selfComm
		if opts.Interceptors != nil && i < len(opts.Interceptors) {
			p.interceptor = opts.Interceptors[i]
		}
		w.procs[i] = p
	}

	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 2 * time.Minute
	}
	errc := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 8192)
					buf = buf[:runtime.Stack(buf, false)]
					errc <- fmt.Errorf("mpi: rank %d panicked: %v\n%s", p.rank, r, buf)
				}
			}()
			body(p)
		}(w.procs[i])
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		select {
		case err := <-errc:
			return err
		default:
			return nil
		}
	case err := <-errc:
		// A rank failed; others may be blocked on it forever. Report
		// immediately (goroutines of the dead run are abandoned).
		return err
	case <-time.After(timeout):
		return fmt.Errorf("mpi: run of %d ranks timed out after %v (deadlock?)", n, timeout)
	}
}

// Rank returns the world rank of this process.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.n }

// World returns the MPI_COMM_WORLD communicator of this process.
func (p *Proc) World() *Comm { return p.worldComm }

// Self returns the MPI_COMM_SELF communicator.
func (p *Proc) Self() *Comm { return p.selfComm }

// SetInterceptor attaches the tracing hook (nil detaches). Typically
// set via Options.Interceptors so MPI_Init is captured too.
func (p *Proc) SetInterceptor(ic mpispec.Interceptor) { p.interceptor = ic }

// Interceptor returns the attached hook, if any.
func (p *Proc) Interceptor() mpispec.Interceptor { return p.interceptor }

// Now returns the rank's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clock.Load() }

// Compute advances the rank's virtual clock by d nanoseconds,
// simulating local computation between MPI calls. With
// Options.ComputeFactor set, it also burns the proportional amount of
// real CPU time, so wall-clock overhead measurements have a realistic
// application denominator.
func (p *Proc) Compute(d int64) {
	if d <= 0 {
		return
	}
	p.clock.Add(d)
	if p.computeFactor > 0 {
		deadline := time.Now().Add(time.Duration(float64(d) * p.computeFactor))
		for time.Now().Before(deadline) {
		}
	}
}

// advanceClock adds a modeled cost with multiplicative noise.
func (p *Proc) advanceClock(base int64) {
	if base <= 0 {
		base = 1
	}
	noise := 1.0 + 0.1*p.rng.Float64()
	p.clock.Add(int64(float64(base) * noise))
}

// raiseClock moves the clock forward to at least t.
func (p *Proc) raiseClock(t int64) {
	for {
		cur := p.clock.Load()
		if cur >= t {
			return
		}
		if p.clock.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Cost model constants (virtual nanoseconds).
const (
	costLatency   = 1500 // p2p latency
	costPerByte   = 1    // ~1GB/s modeled bandwidth, per byte cost in tenths handled below
	costCallEntry = 120  // fixed software overhead per MPI call
)

func transferCost(bytes int) int64 {
	return costLatency + int64(bytes)/10
}

// newHandle returns the next per-process object handle.
func (p *Proc) newHandle() int64 {
	h := p.nextHandle
	p.nextHandle++
	return h
}

// Alloc simulates a heap allocation of n bytes, reporting it to the
// interceptor like an intercepted malloc.
func (p *Proc) Alloc(n int) *Buffer { return p.allocDev(n, 0) }

// AllocDevice simulates a device allocation (cudaMalloc-style) on the
// given device id (>= 1).
func (p *Proc) AllocDevice(n int, device int32) *Buffer { return p.allocDev(n, device) }

func (p *Proc) allocDev(n int, device int32) *Buffer {
	if n < 0 {
		panic("mpi: negative allocation")
	}
	addr := p.nextAddr
	p.nextAddr += uint64(n) + 64 // pad so allocations never abut
	b := &Buffer{proc: p, addr: addr, data: make([]byte, n), device: device}
	if ic := p.interceptor; ic != nil {
		ic.MemAlloc(addr, uint64(n), device)
	}
	return b
}

// Realloc simulates realloc: the buffer moves to a fresh address with
// its prefix preserved, and the interceptor sees the free and the new
// allocation, exactly as an intercepted realloc would (§3.3.3).
func (p *Proc) Realloc(b *Buffer, n int) *Buffer {
	if b == nil || b.freed {
		return p.Alloc(n)
	}
	nb := p.allocDev(n, b.device)
	copy(nb.data, b.data)
	b.Free()
	return nb
}

// StackVar returns a pointer to simulated stack memory of n bytes: the
// allocation is NOT reported to the interceptor, exercising the
// tracer's conservative fallback for unknown addresses (§3.3.3).
func (p *Proc) StackVar(n int) Ptr {
	addr := p.nextStack
	p.nextStack += uint64(n) + 16
	return Ptr{addr: addr, data: make([]byte, n)}
}

// registerComm adds a comm to the handle registry (for OOB lookups).
func (p *Proc) registerComm(c *Comm) {
	p.commsMu.Lock()
	p.comms[c.handle] = c
	p.commsMu.Unlock()
}

func (p *Proc) lookupComm(handle int64) *Comm {
	p.commsMu.Lock()
	defer p.commsMu.Unlock()
	return p.comms[handle]
}

// icall wraps an MPI call body with interception: Pre sees the input
// argument values, body executes the call and fills output values in
// place, Post sees the completed record.
func (p *Proc) icall(id mpispec.FuncID, args []mpispec.Value, body func()) {
	p.advanceClock(costCallEntry)
	ic := p.interceptor
	if ic == nil {
		body()
		p.advanceClock(costCallEntry)
		return
	}
	rec := &mpispec.CallRecord{Func: id, Args: args, TStart: p.clock.Load(), Rank: p.rank}
	ic.Pre(rec)
	body()
	// Exit-path software cost, so every call has a nonzero duration.
	p.advanceClock(costCallEntry)
	rec.TEnd = p.clock.Load()
	ic.Post(rec)
}
