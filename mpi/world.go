package mpi

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcrepro/pilgrim/internal/metrics"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// World is one simulated MPI job: n ranks, a message router, the
// rendezvous state for collectives, and the failure-handling state
// (revocation, blocked-op registry, crash bookkeeping).
type World struct {
	n     int
	procs []*Proc

	mbMu  sync.Mutex
	boxes map[mbKey]*mailbox

	collMu sync.Mutex
	colls  map[collKey]*collSlot

	ctxSeq atomic.Int64
	seed   int64

	// progress counts globally visible events (call entries, message
	// posts, completions, rendezvous arrivals); the watchdog reads it
	// to distinguish a quiescent (deadlocked) job from a slow one.
	progress atomic.Int64
	// finished counts rank goroutines that have returned or unwound.
	finished atomic.Int64

	// revocation: once revCause is set, every blocking operation wakes
	// and unwinds with ErrRevoked instead of hanging.
	revoked  atomic.Bool
	revMu    sync.Mutex
	revCause error

	// blocked-op registry for deadlock diagnosis.
	blkMu   sync.Mutex
	blocked map[int]*blockEntry

	// ranks that died (injected crash or panic) before the halt.
	crashMu sync.Mutex
	crashed []int

	// metrics, when non-nil, publishes runtime self-observability
	// counters (messages, bytes, collectives, blocked time, faults).
	metrics *runMetrics
}

type mbKey struct {
	ctx  int64
	dest int // world rank
}

type collKey struct {
	ctx int64
	seq int64
	oob bool
}

// Proc is one simulated MPI process. All MPI operations hang off it;
// it is confined to the goroutine running the rank's body (the runtime
// itself synchronizes cross-rank effects).
type Proc struct {
	rank  int
	world *World

	interceptor mpispec.Interceptor

	mu   sync.Mutex
	cond *sync.Cond // broadcast whenever any of this proc's requests completes

	clock         atomic.Int64 // virtual time, ns
	rng           *rand.Rand
	computeFactor float64

	// fault injection (rank goroutine only).
	faults    *faultState
	msgDelay  int64 // armed delay for the next posted envelope
	msgDrop   int   // armed drop count for upcoming envelopes
	callCount int64 // 1-based MPI call counter

	// curFunc is the FuncID of the MPI call currently executing,
	// read by the deadlock registry from the watchdog goroutine.
	curFunc atomic.Int32

	nextAddr   uint64
	nextStack  uint64
	nextHandle int64

	commsMu sync.Mutex
	comms   map[int64]*Comm // handle -> comm, for OOB lookups

	oobMu      sync.Mutex
	oobPending map[int64]*oobOp
	oobSeq     int64

	worldComm *Comm
	selfComm  *Comm

	initialized bool
	finalized   bool
}

type oobOp struct {
	done   bool
	result int32
}

// Options configures a simulated run.
type Options struct {
	// Seed drives the per-rank noise model; runs with equal seeds see
	// identical virtual timing. Zero means seed 1.
	Seed int64
	// Timeout aborts a deadlocked run. Zero means 2 minutes.
	Timeout time.Duration
	// Interceptors, if non-nil, is indexed by rank and attached before
	// the body runs (so MPI_Init is already traced).
	Interceptors []mpispec.Interceptor
	// ComputeFactor makes Proc.Compute burn real CPU time: a call to
	// Compute(d) busy-spins for d*ComputeFactor nanoseconds of wall
	// time in addition to advancing the virtual clock. Zero keeps
	// compute purely virtual (the default; size experiments need no
	// real work). Overhead experiments set it so tracing cost is
	// measured against a realistic application denominator.
	ComputeFactor float64
	// FaultPlan, if non-nil, injects deterministic failures (crash a
	// rank at call N, delay/drop a message, fail a collective). See
	// the Fault type for semantics.
	FaultPlan *FaultPlan
	// Metrics, if non-nil, receives runtime self-observability
	// counters: per-rank message/byte/collective counts, blocked-time
	// histograms, fault events, and classified rank failures.
	// pilgrim.RunSim sets this automatically from its own collector.
	Metrics *metrics.Collector
}

// Run executes body as an SPMD program on n simulated ranks and blocks
// until every rank returns. A panic in any rank aborts the run and is
// returned as an error.
func Run(n int, body func(p *Proc)) error {
	return RunOpt(n, Options{}, body)
}

// RunOpt is Run with explicit options. On failure the returned error
// is a *RunError carrying the precipitating cause (crash, abort,
// panic, or deadlock diagnosis) plus every rank's individual error;
// ranks that were blocked when the job halted unwind with errors
// wrapping ErrRevoked rather than being silently abandoned.
func RunOpt(n int, opts Options, body func(p *Proc)) error {
	if n <= 0 {
		return fmt.Errorf("mpi: invalid world size %d", n)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	w := &World{
		n:       n,
		boxes:   make(map[mbKey]*mailbox),
		colls:   make(map[collKey]*collSlot),
		seed:    seed,
		blocked: make(map[int]*blockEntry),
		metrics: newRunMetrics(opts.Metrics, n),
	}
	w.ctxSeq.Store(hDynamicBase) // context ids share the reserved space above predefined handles
	w.procs = make([]*Proc, n)
	worldGroup := make([]int, n)
	for i := range worldGroup {
		worldGroup[i] = i
	}
	for i := 0; i < n; i++ {
		p := &Proc{
			rank:          i,
			world:         w,
			computeFactor: opts.ComputeFactor,
			rng:           rand.New(rand.NewSource(seed + int64(i)*7919)),
			// Address-space bases diverge per rank, as real heaps do
			// (ASLR, allocation history): absolute addresses are
			// rank-specific, symbolic segment ids are not.
			nextAddr:   0x10000 + uint64(i)*0x0010_0000,
			nextStack:  0x7f00_0000_0000 + uint64(i)*0x0100_0000,
			nextHandle: hDynamicBase,
			comms:      make(map[int64]*Comm),
			oobPending: make(map[int64]*oobOp),
		}
		p.cond = sync.NewCond(&p.mu)
		p.worldComm = &Comm{proc: p, handle: hCommWorld, ctx: hCommWorld, group: worldGroup, myRank: i, name: "MPI_COMM_WORLD"}
		p.selfComm = &Comm{proc: p, handle: hCommSelf, ctx: hCommSelf, group: []int{i}, myRank: 0, name: "MPI_COMM_SELF"}
		p.comms[hCommWorld] = p.worldComm
		p.comms[hCommSelf] = p.selfComm
		if opts.Interceptors != nil && i < len(opts.Interceptors) {
			p.interceptor = opts.Interceptors[i]
		}
		p.faults = newFaultState(opts.FaultPlan, i)
		w.procs[i] = p
	}

	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 2 * time.Minute
	}

	var errMu sync.Mutex
	rankErrs := make(map[int]error)
	record := func(rank int, err error) {
		errMu.Lock()
		rankErrs[rank] = err
		errMu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer w.finished.Add(1)
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				switch v := r.(type) {
				case jobRevoked:
					record(p.rank, fmt.Errorf("mpi: rank %d: %w", p.rank, ErrRevoked))
				case *CrashError:
					// Injected crash: the rank dies, but the job is NOT
					// revoked — survivors drain deterministically until
					// they finish or block on the dead rank, at which
					// point the watchdog halts the run with a diagnosis.
					record(p.rank, v)
					w.noteCrash(p.rank)
				case *AbortError:
					record(p.rank, v)
					w.revoke(v)
				default:
					buf := make([]byte, 8192)
					buf = buf[:runtime.Stack(buf, false)]
					pe := &PanicError{Rank: p.rank, Value: v, Stack: string(buf)}
					record(p.rank, pe)
					w.noteCrash(p.rank)
					w.revoke(pe)
				}
			}()
			body(p)
		}(w.procs[i])
	}

	stopWatch := make(chan struct{})
	go w.watchdog(stopWatch)
	defer close(stopWatch)

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		// Timed out before the watchdog could decide (e.g. a rank
		// stuck outside MPI): diagnose whatever is blocked, halt, and
		// wait a bounded grace period for the unwound ranks.
		w.revoke(w.diagnose(true))
		select {
		case <-done:
		case <-time.After(revocationGrace):
		}
	}

	abandoned := n - int(w.finished.Load())
	cause := w.revokeCause()
	errMu.Lock()
	errs := make(map[int]error, len(rankErrs))
	for r, e := range rankErrs {
		errs[r] = e
	}
	errMu.Unlock()
	if cause == nil && len(errs) == 0 && abandoned == 0 {
		return nil
	}
	if cause == nil {
		// A rank failed without triggering revocation (e.g. a crash
		// whose survivors all completed): the lowest failed rank's
		// error is the cause.
		for _, r := range (&RunError{Ranks: errs}).FailedRanks() {
			cause = errs[r]
			break
		}
	}
	runErr := &RunError{Cause: cause, Ranks: errs, Abandoned: abandoned}
	if w.metrics != nil {
		w.metrics.recordRunFailure(runErr)
	}
	return runErr
}

// Rank returns the world rank of this process.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.n }

// World returns the MPI_COMM_WORLD communicator of this process.
func (p *Proc) World() *Comm { return p.worldComm }

// Self returns the MPI_COMM_SELF communicator.
func (p *Proc) Self() *Comm { return p.selfComm }

// SetInterceptor attaches the tracing hook (nil detaches). Typically
// set via Options.Interceptors so MPI_Init is captured too.
func (p *Proc) SetInterceptor(ic mpispec.Interceptor) { p.interceptor = ic }

// Interceptor returns the attached hook, if any.
func (p *Proc) Interceptor() mpispec.Interceptor { return p.interceptor }

// Now returns the rank's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clock.Load() }

// CallCount returns the number of MPI calls the rank has entered.
func (p *Proc) CallCount() int64 { return p.callCount }

// curFuncName names the MPI call currently executing on this rank.
func (p *Proc) curFuncName() string {
	return mpispec.FuncID(p.curFunc.Load()).Name()
}

// Compute advances the rank's virtual clock by d nanoseconds,
// simulating local computation between MPI calls. With
// Options.ComputeFactor set, it also burns the proportional amount of
// real CPU time, so wall-clock overhead measurements have a realistic
// application denominator.
func (p *Proc) Compute(d int64) {
	if d <= 0 {
		return
	}
	p.clock.Add(d)
	if p.computeFactor > 0 {
		deadline := time.Now().Add(time.Duration(float64(d) * p.computeFactor))
		// Spin, but yield periodically so high ComputeFactor ranks
		// don't starve other rank goroutines on small GOMAXPROCS, and
		// notice a revoked job without waiting for the next MPI call.
		for i := 0; time.Now().Before(deadline); i++ {
			if i&1023 == 0 {
				p.world.checkRevoked()
				runtime.Gosched()
			}
		}
	}
}

// advanceClock adds a modeled cost with multiplicative noise.
func (p *Proc) advanceClock(base int64) {
	if base <= 0 {
		base = 1
	}
	noise := 1.0 + 0.1*p.rng.Float64()
	p.clock.Add(int64(float64(base) * noise))
}

// raiseClock moves the clock forward to at least t.
func (p *Proc) raiseClock(t int64) {
	for {
		cur := p.clock.Load()
		if cur >= t {
			return
		}
		if p.clock.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Cost model constants (virtual nanoseconds).
const (
	costLatency   = 1500 // p2p latency
	costPerByte   = 1    // ~1GB/s modeled bandwidth, per byte cost in tenths handled below
	costCallEntry = 120  // fixed software overhead per MPI call
)

func transferCost(bytes int) int64 {
	return costLatency + int64(bytes)/10
}

// newHandle returns the next per-process object handle.
func (p *Proc) newHandle() int64 {
	h := p.nextHandle
	p.nextHandle++
	return h
}

// Alloc simulates a heap allocation of n bytes, reporting it to the
// interceptor like an intercepted malloc.
func (p *Proc) Alloc(n int) *Buffer { return p.allocDev(n, 0) }

// AllocDevice simulates a device allocation (cudaMalloc-style) on the
// given device id (>= 1).
func (p *Proc) AllocDevice(n int, device int32) *Buffer { return p.allocDev(n, device) }

func (p *Proc) allocDev(n int, device int32) *Buffer {
	if n < 0 {
		panic("mpi: negative allocation")
	}
	addr := p.nextAddr
	p.nextAddr += uint64(n) + 64 // pad so allocations never abut
	b := &Buffer{proc: p, addr: addr, data: make([]byte, n), device: device}
	if ic := p.interceptor; ic != nil {
		ic.MemAlloc(addr, uint64(n), device)
	}
	return b
}

// Realloc simulates realloc: the buffer moves to a fresh address with
// its prefix preserved, and the interceptor sees the free and the new
// allocation, exactly as an intercepted realloc would (§3.3.3).
func (p *Proc) Realloc(b *Buffer, n int) *Buffer {
	if b == nil || b.freed {
		return p.Alloc(n)
	}
	nb := p.allocDev(n, b.device)
	copy(nb.data, b.data)
	b.Free()
	return nb
}

// StackVar returns a pointer to simulated stack memory of n bytes: the
// allocation is NOT reported to the interceptor, exercising the
// tracer's conservative fallback for unknown addresses (§3.3.3).
func (p *Proc) StackVar(n int) Ptr {
	addr := p.nextStack
	p.nextStack += uint64(n) + 16
	return Ptr{addr: addr, data: make([]byte, n)}
}

// registerComm adds a comm to the handle registry (for OOB lookups).
func (p *Proc) registerComm(c *Comm) {
	p.commsMu.Lock()
	p.comms[c.handle] = c
	p.commsMu.Unlock()
}

func (p *Proc) lookupComm(handle int64) *Comm {
	p.commsMu.Lock()
	defer p.commsMu.Unlock()
	return p.comms[handle]
}

// icall wraps an MPI call body with interception: Pre sees the input
// argument values, body executes the call and fills output values in
// place, Post sees the completed record. It is also where the fault
// layer hooks in: a revoked job unwinds the rank here, and the rank's
// fault plan is consulted against its call counter.
func (p *Proc) icall(id mpispec.FuncID, args []mpispec.Value, body func()) {
	p.world.checkRevoked()
	p.world.progress.Add(1)
	p.callCount++
	p.curFunc.Store(int32(id))
	p.checkFaults(p.callCount)
	p.advanceClock(costCallEntry)
	ic := p.interceptor
	if ic == nil {
		body()
		p.advanceClock(costCallEntry)
		return
	}
	rec := &mpispec.CallRecord{Func: id, Args: args, TStart: p.clock.Load(), Rank: p.rank}
	ic.Pre(rec)
	body()
	// Exit-path software cost, so every call has a nonzero duration.
	p.advanceClock(costCallEntry)
	rec.TEnd = p.clock.Load()
	ic.Post(rec)
}
