package mpi

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Deadlock diagnosis. Every blocking MPI operation registers what it
// waits on (peer/tag/comm for point-to-point, the missing members for
// collectives) in a world-level registry. A watchdog observes the
// registry together with a global progress counter: when every live
// rank is blocked and no progress has happened for a full quiescence
// window, the job is deadlocked (or, if a rank crashed, has drained as
// far as it can), and the watchdog halts it with a wait-for report
// naming the blocked operations and the dependency cycle instead of
// letting the run sit until timeout.

// BlockedOp is one rank's blocked operation, as reported.
type BlockedOp struct {
	Rank    int
	Op      string // MPI function name, e.g. "MPI_Recv"
	Detail  string // argument summary, e.g. "src=1, tag=5, comm=MPI_COMM_WORLD"
	WaitsOn []int  // world ranks whose action would unblock this op
}

func (b BlockedOp) String() string {
	return fmt.Sprintf("rank %d %s(%s)", b.Rank, b.Op, b.Detail)
}

// waitTarget describes what a blocked operation depends on. peers is
// evaluated at report time (under the owning structures' locks), so
// collective targets can report exactly the members that have not
// arrived yet.
type waitTarget struct {
	detail string
	peers  func() []int
}

func staticPeers(ranks ...int) func() []int {
	return func() []int { return ranks }
}

// recvTarget builds the wait target of a receive-like operation.
func recvTarget(c *Comm, source, tag int) *waitTarget {
	detail := fmt.Sprintf("src=%s, tag=%s, comm=%s", rankName(source), tagName(tag), c.name)
	if source == AnySource {
		g := c.group
		if c.remote != nil {
			g = c.remote
		}
		var peers []int
		for _, wr := range g {
			if wr != c.proc.rank {
				peers = append(peers, wr)
			}
		}
		return &waitTarget{detail: detail, peers: staticPeers(peers...)}
	}
	if w, err := c.resolveDest(source); err == nil {
		return &waitTarget{detail: detail, peers: staticPeers(w)}
	}
	return &waitTarget{detail: detail, peers: staticPeers()}
}

// sendTarget builds the wait target of a synchronous send.
func sendTarget(c *Comm, destWorld, dest, tag int) *waitTarget {
	return &waitTarget{
		detail: fmt.Sprintf("dest=%d, tag=%s, comm=%s", dest, tagName(tag), c.name),
		peers:  staticPeers(destWorld),
	}
}

// collTarget builds the wait target of a collective rendezvous: the
// members of the communicator that have not arrived at the slot yet.
func collTarget(w *World, key collKey, members []int, self int, commName string) *waitTarget {
	return &waitTarget{
		detail: fmt.Sprintf("comm=%s", commName),
		peers: func() []int {
			w.collMu.Lock()
			s := w.colls[key]
			w.collMu.Unlock()
			var missing []int
			if s == nil {
				// Slot already reclaimed (or not created): nothing known.
				return missing
			}
			s.mu.Lock()
			for i, wr := range members {
				if _, ok := s.contrib[i]; !ok && wr != self {
					missing = append(missing, wr)
				}
			}
			s.mu.Unlock()
			return missing
		},
	}
}

// collTargetWorldKeyed is collTarget for rendezvous keyed by world
// rank (intercomm merge, leader exchange) rather than comm rank.
func collTargetWorldKeyed(w *World, key collKey, members []int, self int, commName string) *waitTarget {
	return &waitTarget{
		detail: fmt.Sprintf("comm=%s", commName),
		peers: func() []int {
			w.collMu.Lock()
			s := w.colls[key]
			w.collMu.Unlock()
			var missing []int
			if s == nil {
				return missing
			}
			s.mu.Lock()
			for _, wr := range members {
				if _, ok := s.contrib[wr]; !ok && wr != self {
					missing = append(missing, wr)
				}
			}
			s.mu.Unlock()
			return missing
		},
	}
}

func rankName(r int) string {
	switch r {
	case AnySource:
		return "ANY_SOURCE"
	case ProcNull:
		return "PROC_NULL"
	}
	return fmt.Sprintf("%d", r)
}

func tagName(t int) string {
	if t == AnyTag {
		return "ANY_TAG"
	}
	return fmt.Sprintf("%d", t)
}

// --- registry ----------------------------------------------------------------

type blockEntry struct {
	op     string
	target *waitTarget
}

// setBlocked records that p's goroutine is about to block in op.
// Returns the deregistration func (call via defer so panics clean up).
func (w *World) setBlocked(p *Proc, target *waitTarget) func() {
	op := p.curFuncName()
	w.blkMu.Lock()
	w.blocked[p.rank] = &blockEntry{op: op, target: target}
	w.blkMu.Unlock()
	var t0 time.Time
	if w.metrics != nil {
		t0 = time.Now()
	}
	return func() {
		w.blkMu.Lock()
		delete(w.blocked, p.rank)
		w.blkMu.Unlock()
		if w.metrics != nil {
			w.metrics.col.BlockedNs.Observe(time.Since(t0).Nanoseconds())
		}
	}
}

// snapshotBlocked evaluates every registered blocked op.
func (w *World) snapshotBlocked() []BlockedOp {
	w.blkMu.Lock()
	entries := make(map[int]*blockEntry, len(w.blocked))
	for r, e := range w.blocked {
		entries[r] = e
	}
	w.blkMu.Unlock()
	out := make([]BlockedOp, 0, len(entries))
	for r, e := range entries {
		b := BlockedOp{Rank: r, Op: e.op}
		if e.target != nil {
			b.Detail = e.target.detail
			if e.target.peers != nil {
				b.WaitsOn = append([]int(nil), e.target.peers()...)
				sort.Ints(b.WaitsOn)
			}
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// blockedCount returns the number of registered blocked ranks.
func (w *World) blockedCount() int {
	w.blkMu.Lock()
	defer w.blkMu.Unlock()
	return len(w.blocked)
}

// --- DeadlockError -----------------------------------------------------------

// DeadlockError is the wait-for report produced when the job
// quiesces with blocked ranks (or times out).
type DeadlockError struct {
	// Blocked lists every blocked operation, sorted by rank.
	Blocked []BlockedOp
	// Cycle, if non-empty, is a dependency cycle among the blocked
	// ranks: Cycle[i] waits on Cycle[i+1], and the last waits on the
	// first.
	Cycle []int
	// Crashed lists ranks that died (injected crash or panic) before
	// the halt; non-empty means the blocked ranks are casualties of a
	// crash rather than a classical deadlock.
	Crashed []int
	// Timeout is set when the report came from the run timeout rather
	// than quiescence detection.
	Timeout bool
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	switch {
	case len(e.Crashed) > 0:
		fmt.Fprintf(&b, "mpi: job halted: %d rank(s) blocked on crashed rank(s) %v", len(e.Blocked), e.Crashed)
	case e.Timeout:
		fmt.Fprintf(&b, "mpi: run timed out with %d rank(s) blocked (deadlock)", len(e.Blocked))
	default:
		fmt.Fprintf(&b, "mpi: deadlock detected: %d rank(s) blocked, no progress", len(e.Blocked))
	}
	for _, op := range e.Blocked {
		fmt.Fprintf(&b, "\n  rank %d: %s(%s) waits on %s", op.Rank, op.Op, op.Detail, ranksOrNone(op.WaitsOn))
	}
	if len(e.Cycle) > 0 {
		b.WriteString("\n  cycle: ")
		byRank := map[int]BlockedOp{}
		for _, op := range e.Blocked {
			byRank[op.Rank] = op
		}
		for i, r := range e.Cycle {
			if i > 0 {
				b.WriteString(" ← ")
			}
			if op, ok := byRank[r]; ok {
				fmt.Fprintf(&b, "rank %d %s(%s)", r, op.Op, op.Detail)
			} else {
				fmt.Fprintf(&b, "rank %d", r)
			}
		}
		fmt.Fprintf(&b, " ← rank %d", e.Cycle[0])
	}
	return b.String()
}

func ranksOrNone(rs []int) string {
	if len(rs) == 0 {
		return "(unknown)"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%d", r)
	}
	return "rank " + strings.Join(parts, ", ")
}

// findCycle looks for a dependency cycle in the wait-for graph.
func findCycle(blocked []BlockedOp) []int {
	adj := map[int][]int{}
	for _, b := range blocked {
		adj[b.Rank] = b.WaitsOn
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var stack []int
	var cycle []int
	var dfs func(r int) bool
	dfs = func(r int) bool {
		color[r] = gray
		stack = append(stack, r)
		for _, nxt := range adj[r] {
			if _, blockedToo := adj[nxt]; !blockedToo {
				continue // peer not blocked: no edge in the wait-for graph
			}
			switch color[nxt] {
			case white:
				if dfs(nxt) {
					return true
				}
			case gray:
				// Found: slice the stack from nxt's position.
				for i, s := range stack {
					if s == nxt {
						cycle = append(cycle, stack[i:]...)
						return true
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[r] = black
		return false
	}
	ranks := make([]int, 0, len(adj))
	for r := range adj {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if color[r] == white {
			stack = stack[:0]
			if dfs(r) {
				return cycle
			}
		}
	}
	return nil
}

// diagnose builds the full report from the current registry state.
func (w *World) diagnose(timeout bool) *DeadlockError {
	blocked := w.snapshotBlocked()
	e := &DeadlockError{Blocked: blocked, Cycle: findCycle(blocked), Timeout: timeout}
	w.crashMu.Lock()
	e.Crashed = append([]int(nil), w.crashed...)
	w.crashMu.Unlock()
	sort.Ints(e.Crashed)
	return e
}

// --- watchdog ----------------------------------------------------------------

// Quiescence parameters: the watchdog declares a halt only after the
// "all live ranks blocked, zero progress" condition holds continuously
// for the full window, which makes a runnable-but-unscheduled
// goroutine (possible under -race or tiny GOMAXPROCS) vanishingly
// unlikely to be misread as deadlock.
const (
	watchdogTick    = 5 * time.Millisecond
	quiesceWindow   = 120 * time.Millisecond
	revocationGrace = 10 * time.Second
)

// watchdog runs until stop closes, checking for quiescence. On
// detection it revokes the world with a diagnosis so every blocked
// rank unwinds promptly.
func (w *World) watchdog(stop <-chan struct{}) {
	ticker := time.NewTicker(watchdogTick)
	defer ticker.Stop()
	var quietSince time.Time
	var quietProgress int64
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if w.revoked.Load() {
			return
		}
		live := w.n - int(w.finished.Load())
		prog := w.progress.Load()
		if live <= 0 || w.blockedCount() < live {
			quietSince = time.Time{}
			continue
		}
		if quietSince.IsZero() || prog != quietProgress {
			quietSince = time.Now()
			quietProgress = prog
			continue
		}
		if time.Since(quietSince) < quiesceWindow {
			continue
		}
		// Re-verify under the same conditions before acting.
		if w.progress.Load() != quietProgress || w.blockedCount() < w.n-int(w.finished.Load()) {
			quietSince = time.Time{}
			continue
		}
		w.revoke(w.diagnose(false))
		return
	}
}

// --- revocation --------------------------------------------------------------

// revoke halts the job: the first cause wins, every blocked operation
// is woken, and any operation entered afterwards unwinds immediately.
func (w *World) revoke(cause error) {
	w.revMu.Lock()
	if w.revCause != nil {
		w.revMu.Unlock()
		return
	}
	w.revCause = cause
	w.revMu.Unlock()
	w.revoked.Store(true)
	// Wake every rank's completion cond...
	for _, p := range w.procs {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	// ...and every collective slot's.
	w.collMu.Lock()
	slots := make([]*collSlot, 0, len(w.colls))
	for _, s := range w.colls {
		slots = append(slots, s)
	}
	w.collMu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// revokeCause returns the halt cause, if any.
func (w *World) revokeCause() error {
	w.revMu.Lock()
	defer w.revMu.Unlock()
	return w.revCause
}

// checkRevoked unwinds the calling rank goroutine if the job halted.
func (w *World) checkRevoked() {
	if w.revoked.Load() {
		panic(jobRevoked{})
	}
}

// goBackground spawns a runtime helper goroutine (non-blocking
// collectives, OOB operations) that swallows revocation panics: when
// the job halts mid-operation, the helper just exits.
func (p *Proc) goBackground(body func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(jobRevoked); ok && p.world.revoked.Load() {
					return
				}
				panic(r)
			}
		}()
		body()
	}()
}

// noteCrash records a dead rank for the diagnosis report.
func (w *World) noteCrash(rank int) {
	w.crashMu.Lock()
	w.crashed = append(w.crashed, rank)
	w.crashMu.Unlock()
}
