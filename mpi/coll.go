package mpi

import (
	"fmt"
	"sort"
)

// collClock advances the caller's clock past a collective that moved
// nbytes with groupwide synchronization at maxClk.
func (p *Proc) collClock(maxClk int64, groupSize, nbytes int) {
	p.raiseClock(maxClk + costLatency*int64(log2ceil(groupSize)) + int64(nbytes)/10)
	p.advanceClock(costCallEntry)
}

// snapshot copies count*size bytes from a buffer.
func snapshot(buf Ptr, nbytes int) []byte {
	data := make([]byte, nbytes)
	copy(data, buf.data)
	return data
}

func (p *Proc) checkColl(c *Comm, dts ...*Datatype) error {
	if err := c.checkUsable(); err != nil {
		return err
	}
	if c.remote != nil {
		return fmt.Errorf("mpi: collectives on inter-communicators are not supported by this simulator")
	}
	for _, dt := range dts {
		if dt != nil {
			if err := dt.checkUsable(); err != nil {
				return err
			}
		}
	}
	if m := p.world.metrics; m != nil {
		m.noteCollective(p.rank)
	}
	return nil
}

// Barrier blocks until all members of c arrive.
func (p *Proc) Barrier(c *Comm) error {
	if err := p.checkColl(c); err != nil {
		return err
	}
	args := []Value{vComm(c)}
	p.icall(fBarrier, args, func() {
		_, maxClk := p.commRendezvous(c, nil, nil)
		p.collClock(maxClk, len(c.group), 0)
	})
	return nil
}

// Bcast broadcasts root's buffer to all members.
func (p *Proc) Bcast(buf Ptr, count int, dt *Datatype, root int, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	nbytes := count * dt.size
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(root), vComm(c)}
	p.icall(fBcast, args, func() {
		var contrib any
		if c.myRank == root {
			contrib = snapshot(buf, nbytes)
		}
		res, maxClk := p.commRendezvous(c, contrib, func(m map[int]any) any {
			return m[root]
		})
		p.collClock(maxClk, len(c.group), nbytes)
		if c.myRank != root {
			if data, ok := res.([]byte); ok {
				copy(buf.data, data)
			}
		}
	})
	return nil
}

// Gather collects equal-size contributions at root (rank order).
func (p *Proc) Gather(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, root int, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vRank(root), vComm(c)}
	p.icall(fGather, args, func() {
		nbytes := sendcount * sendtype.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), concatCompute(len(c.group)))
		p.collClock(maxClk, len(c.group), nbytes)
		if c.myRank == root {
			copy(recvbuf.data, res.([]byte))
		}
	})
	return nil
}

// Gatherv collects variable-size contributions at root.
func (p *Proc) Gatherv(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcounts, displs []int, recvtype *Datatype, root int, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vIntArray(recvcounts), vIntArray(displs), vType(recvtype), vRank(root), vComm(c)}
	p.icall(fGatherv, args, func() {
		nbytes := sendcount * sendtype.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), identityCompute)
		m := res.(map[int]any)
		p.collClock(maxClk, len(c.group), nbytes)
		if c.myRank == root {
			for i := 0; i < len(c.group) && i < len(recvcounts); i++ {
				data, _ := m[i].([]byte)
				off := displs[i] * recvtype.size
				n := recvcounts[i] * recvtype.size
				if off >= 0 && off+n <= len(recvbuf.data) {
					copy(recvbuf.data[off:off+n], data)
				}
			}
		}
	})
	return nil
}

// Scatter distributes equal blocks of root's buffer (rank order).
func (p *Proc) Scatter(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, root int, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vRank(root), vComm(c)}
	p.icall(fScatter, args, func() {
		blockBytes := sendcount * sendtype.size
		var contrib any
		if c.myRank == root {
			contrib = snapshot(sendbuf, blockBytes*len(c.group))
		}
		res, maxClk := p.commRendezvous(c, contrib, func(m map[int]any) any { return m[root] })
		p.collClock(maxClk, len(c.group), blockBytes)
		if data, ok := res.([]byte); ok {
			off := c.myRank * blockBytes
			if off+blockBytes <= len(data) {
				copy(recvbuf.data, data[off:off+blockBytes])
			}
		}
	})
	return nil
}

// Scatterv distributes variable blocks of root's buffer.
func (p *Proc) Scatterv(sendbuf Ptr, sendcounts, displs []int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, root int, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vIntArray(sendcounts), vIntArray(displs), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vRank(root), vComm(c)}
	p.icall(fScatterv, args, func() {
		var contrib any
		if c.myRank == root {
			contrib = scattervContrib{data: snapshot(sendbuf, len(sendbuf.data)),
				counts: append([]int(nil), sendcounts...), displs: append([]int(nil), displs...),
				elem: sendtype.size}
		}
		res, maxClk := p.commRendezvous(c, contrib, func(m map[int]any) any { return m[root] })
		p.collClock(maxClk, len(c.group), recvcount*recvtype.size)
		if sc, ok := res.(scattervContrib); ok {
			i := c.myRank
			if i < len(sc.counts) {
				off := sc.displs[i] * sc.elem
				n := sc.counts[i] * sc.elem
				if off >= 0 && off+n <= len(sc.data) {
					copy(recvbuf.data, sc.data[off:off+n])
				}
			}
		}
	})
	return nil
}

type scattervContrib struct {
	data   []byte
	counts []int
	displs []int
	elem   int
}

// Allgather gathers equal blocks to every member.
func (p *Proc) Allgather(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vComm(c)}
	p.icall(fAllgather, args, func() {
		nbytes := sendcount * sendtype.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), concatCompute(len(c.group)))
		p.collClock(maxClk, len(c.group), nbytes*len(c.group))
		copy(recvbuf.data, res.([]byte))
	})
	return nil
}

// Allgatherv gathers variable blocks to every member.
func (p *Proc) Allgatherv(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcounts, displs []int, recvtype *Datatype, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vIntArray(recvcounts), vIntArray(displs), vType(recvtype), vComm(c)}
	p.icall(fAllgatherv, args, func() {
		nbytes := sendcount * sendtype.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), identityCompute)
		m := res.(map[int]any)
		p.collClock(maxClk, len(c.group), nbytes*len(c.group))
		for i := 0; i < len(c.group) && i < len(recvcounts); i++ {
			data, _ := m[i].([]byte)
			off := displs[i] * recvtype.size
			n := recvcounts[i] * recvtype.size
			if off >= 0 && off+n <= len(recvbuf.data) {
				copy(recvbuf.data[off:off+n], data)
			}
		}
	})
	return nil
}

// Alltoall exchanges equal blocks between all pairs.
func (p *Proc) Alltoall(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vComm(c)}
	p.icall(fAlltoall, args, func() {
		blockBytes := sendcount * sendtype.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, blockBytes*len(c.group)), identityCompute)
		m := res.(map[int]any)
		p.collClock(maxClk, len(c.group), blockBytes*len(c.group))
		for i := 0; i < len(c.group); i++ {
			data, _ := m[i].([]byte)
			srcOff := c.myRank * blockBytes
			dstOff := i * blockBytes
			if srcOff+blockBytes <= len(data) && dstOff+blockBytes <= len(recvbuf.data) {
				copy(recvbuf.data[dstOff:dstOff+blockBytes], data[srcOff:srcOff+blockBytes])
			}
		}
	})
	return nil
}

// Alltoallv exchanges variable blocks between all pairs.
func (p *Proc) Alltoallv(sendbuf Ptr, sendcounts, sdispls []int, sendtype *Datatype,
	recvbuf Ptr, recvcounts, rdispls []int, recvtype *Datatype, c *Comm) error {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vIntArray(sendcounts), vIntArray(sdispls), vType(sendtype),
		vPtr(recvbuf), vIntArray(recvcounts), vIntArray(rdispls), vType(recvtype), vComm(c)}
	p.icall(fAlltoallv, args, func() {
		contrib := scattervContrib{data: snapshot(sendbuf, len(sendbuf.data)),
			counts: append([]int(nil), sendcounts...), displs: append([]int(nil), sdispls...),
			elem: sendtype.size}
		res, maxClk := p.commRendezvous(c, contrib, identityCompute)
		m := res.(map[int]any)
		total := 0
		for _, n := range recvcounts {
			total += n
		}
		p.collClock(maxClk, len(c.group), total*recvtype.size)
		for i := 0; i < len(c.group) && i < len(recvcounts); i++ {
			sc, _ := m[i].(scattervContrib)
			if c.myRank >= len(sc.counts) {
				continue
			}
			srcOff := sc.displs[c.myRank] * sc.elem
			n := sc.counts[c.myRank] * sc.elem
			dstOff := rdispls[i] * recvtype.size
			if srcOff >= 0 && srcOff+n <= len(sc.data) && dstOff >= 0 && dstOff+n <= len(recvbuf.data) {
				copy(recvbuf.data[dstOff:dstOff+n], sc.data[srcOff:srcOff+n])
			}
		}
	})
	return nil
}

// Reduce combines contributions at root with op.
func (p *Proc) Reduce(sendbuf, recvbuf Ptr, count int, dt *Datatype, op *Op, root int, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(count), vType(dt), vOp(op), vRank(root), vComm(c)}
	p.icall(fReduce, args, func() {
		nbytes := count * dt.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), reduceCompute(op, dt, len(c.group)))
		p.collClock(maxClk, len(c.group), nbytes)
		if c.myRank == root {
			copy(recvbuf.data, res.([]byte))
		}
	})
	return nil
}

// Allreduce combines contributions and distributes the result to all.
func (p *Proc) Allreduce(sendbuf, recvbuf Ptr, count int, dt *Datatype, op *Op, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(count), vType(dt), vOp(op), vComm(c)}
	p.icall(fAllreduce, args, func() {
		nbytes := count * dt.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), reduceCompute(op, dt, len(c.group)))
		p.collClock(maxClk, len(c.group), nbytes)
		copy(recvbuf.data, res.([]byte))
	})
	return nil
}

// ReduceScatterBlock reduces and scatters equal blocks.
func (p *Proc) ReduceScatterBlock(sendbuf, recvbuf Ptr, recvcount int, dt *Datatype, op *Op, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(recvcount), vType(dt), vOp(op), vComm(c)}
	p.icall(fReduceScatterBlock, args, func() {
		blockBytes := recvcount * dt.size
		total := blockBytes * len(c.group)
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, total), reduceCompute(op, dt, len(c.group)))
		p.collClock(maxClk, len(c.group), blockBytes)
		data := res.([]byte)
		off := c.myRank * blockBytes
		if off+blockBytes <= len(data) {
			copy(recvbuf.data, data[off:off+blockBytes])
		}
	})
	return nil
}

// ReduceScatter reduces and scatters variable blocks.
func (p *Proc) ReduceScatter(sendbuf, recvbuf Ptr, recvcounts []int, dt *Datatype, op *Op, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vIntArray(recvcounts), vType(dt), vOp(op), vComm(c)}
	p.icall(fReduceScatter, args, func() {
		total := 0
		for _, n := range recvcounts {
			total += n
		}
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, total*dt.size), reduceCompute(op, dt, len(c.group)))
		myBytes := 0
		if c.myRank < len(recvcounts) {
			myBytes = recvcounts[c.myRank] * dt.size
		}
		p.collClock(maxClk, len(c.group), myBytes)
		data := res.([]byte)
		off := 0
		for i := 0; i < c.myRank && i < len(recvcounts); i++ {
			off += recvcounts[i] * dt.size
		}
		if off+myBytes <= len(data) {
			copy(recvbuf.data, data[off:off+myBytes])
		}
	})
	return nil
}

// Scan computes an inclusive prefix reduction.
func (p *Proc) Scan(sendbuf, recvbuf Ptr, count int, dt *Datatype, op *Op, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(count), vType(dt), vOp(op), vComm(c)}
	p.icall(fScan, args, func() {
		nbytes := count * dt.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), prefixCompute(op, dt, len(c.group), true))
		p.collClock(maxClk, len(c.group), nbytes)
		prefixes := res.([][]byte)
		if c.myRank < len(prefixes) && prefixes[c.myRank] != nil {
			copy(recvbuf.data, prefixes[c.myRank])
		}
	})
	return nil
}

// Exscan computes an exclusive prefix reduction (rank 0's recvbuf is
// untouched).
func (p *Proc) Exscan(sendbuf, recvbuf Ptr, count int, dt *Datatype, op *Op, c *Comm) error {
	if err := p.checkColl(c, dt); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(count), vType(dt), vOp(op), vComm(c)}
	p.icall(fExscan, args, func() {
		nbytes := count * dt.size
		res, maxClk := p.commRendezvous(c, snapshot(sendbuf, nbytes), prefixCompute(op, dt, len(c.group), false))
		p.collClock(maxClk, len(c.group), nbytes)
		prefixes := res.([][]byte)
		if c.myRank < len(prefixes) && prefixes[c.myRank] != nil {
			copy(recvbuf.data, prefixes[c.myRank])
		}
	})
	return nil
}

// --- compute helpers ---------------------------------------------------------

// identityCompute returns the raw contribution map.
func identityCompute(m map[int]any) any { return m }

// concatCompute concatenates contributions in rank order.
func concatCompute(n int) func(map[int]any) any {
	return func(m map[int]any) any {
		var out []byte
		for i := 0; i < n; i++ {
			if data, ok := m[i].([]byte); ok {
				out = append(out, data...)
			}
		}
		return out
	}
}

// reduceCompute folds contributions in rank order with op.
func reduceCompute(op *Op, dt *Datatype, n int) func(map[int]any) any {
	return func(m map[int]any) any {
		ranks := make([]int, 0, len(m))
		for r := range m {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		var acc []byte
		for _, r := range ranks {
			data, ok := m[r].([]byte)
			if !ok {
				continue
			}
			if acc == nil {
				acc = append([]byte(nil), data...)
			} else {
				op.combine(acc, data, dt)
			}
		}
		return acc
	}
}

// prefixCompute builds per-rank prefix reductions. inclusive=false
// leaves rank 0's slot nil.
func prefixCompute(op *Op, dt *Datatype, n int, inclusive bool) func(map[int]any) any {
	return func(m map[int]any) any {
		out := make([][]byte, n)
		var acc []byte
		for i := 0; i < n; i++ {
			data, _ := m[i].([]byte)
			if inclusive {
				if acc == nil {
					acc = append([]byte(nil), data...)
				} else {
					op.combine(acc, data, dt)
				}
				out[i] = append([]byte(nil), acc...)
			} else {
				if acc != nil {
					out[i] = append([]byte(nil), acc...)
				}
				if acc == nil {
					acc = append([]byte(nil), data...)
				} else {
					op.combine(acc, data, dt)
				}
			}
		}
		return out
	}
}
