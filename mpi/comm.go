package mpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Group is an ordered set of world ranks (a per-process object, as in
// MPI).
type Group struct {
	handle int64
	ranks  []int // world ranks in group-rank order
	freed  bool
}

// Handle returns the runtime handle of the group.
func (g *Group) Handle() int64 { return g.handle }

// Ranks returns the world ranks in group order (callers must not
// modify).
func (g *Group) Ranks() []int { return g.ranks }

// Comm is a communicator as seen by one process: a shared context id,
// the (local) group, and for inter-communicators a remote group.
type Comm struct {
	proc   *Proc
	handle int64
	ctx    int64
	group  []int // world ranks, comm-rank order (local group)
	myRank int   // rank within the local group
	remote []int // remote group for inter-communicators, nil otherwise
	name   string
	freed  bool

	seq    atomic.Int64 // collective-call sequence, per process
	oobSeq atomic.Int64 // out-of-band sequence (tracer bookkeeping)

	cart *cartInfo
}

// Handle returns the per-process handle of the communicator.
func (c *Comm) Handle() int64 { return c.handle }

// Rank returns the calling process's rank in the communicator
// (untraced accessor; the traced call is Proc.CommRank).
func (c *Comm) Rank() int { return c.myRank }

// Size returns the size of the local group (untraced accessor).
func (c *Comm) Size() int { return len(c.group) }

// RemoteSizeRaw returns the remote group size (0 for intra).
func (c *Comm) RemoteSizeRaw() int { return len(c.remote) }

// IsInter reports whether this is an inter-communicator.
func (c *Comm) IsInter() bool { return c.remote != nil }

// Name returns the communicator name.
func (c *Comm) Name() string { return c.name }

// Context returns the shared context id (identical on all members).
func (c *Comm) Context() int64 { return c.ctx }

// GroupRanks returns the local group's world ranks.
func (c *Comm) GroupRanks() []int { return c.group }

func (c *Comm) checkUsable() error {
	if c == nil {
		return fmt.Errorf("mpi: nil communicator")
	}
	if c.freed {
		return fmt.Errorf("mpi: communicator %q used after free", c.name)
	}
	return nil
}

// --- Rendezvous: the synchronization core for collectives ------------------

type collSlot struct {
	mu       sync.Mutex
	cond     *sync.Cond
	need     int
	arrived  int
	left     int
	contrib  map[int]any
	result   any
	computed bool
	maxClock int64
}

func (w *World) getSlot(key collKey, need int) *collSlot {
	w.collMu.Lock()
	defer w.collMu.Unlock()
	s := w.colls[key]
	if s == nil {
		s = &collSlot{need: need, contrib: make(map[int]any, need)}
		s.cond = sync.NewCond(&s.mu)
		w.colls[key] = s
	}
	return s
}

func (w *World) dropSlot(key collKey) {
	w.collMu.Lock()
	delete(w.colls, key)
	w.collMu.Unlock()
}

// rendezvous synchronizes `need` participants identified by rank (any
// dense or sparse key). The last arriver runs compute over all
// contributions; everyone receives its result and the maximum arrival
// clock. The slot is reclaimed when the last participant leaves.
func (w *World) rendezvous(key collKey, need, rank int, clock int64, contrib any,
	compute func(contrib map[int]any) any) (any, int64) {
	w.progress.Add(1)
	s := w.getSlot(key, need)
	s.mu.Lock()
	s.contrib[rank] = contrib
	s.arrived++
	if clock > s.maxClock {
		s.maxClock = clock
	}
	if s.arrived == s.need {
		if compute != nil {
			s.result = compute(s.contrib)
		}
		s.computed = true
		s.cond.Broadcast()
	} else {
		for !s.computed {
			if w.revoked.Load() {
				// The job halted while we waited for the other members:
				// unwind (the slot leaks, but the world is being torn
				// down anyway).
				s.mu.Unlock()
				panic(jobRevoked{})
			}
			s.cond.Wait()
		}
	}
	res := s.result
	maxClk := s.maxClock
	s.left++
	last := s.left == s.need
	s.mu.Unlock()
	if last {
		w.dropSlot(key)
	}
	return res, maxClk
}

// commRendezvous is a rendezvous over the members of c using its
// per-process collective sequence number. It runs on the rank's own
// goroutine (blocking collectives), so it registers in the deadlock
// registry; the non-blocking variants register via their request's
// wait target instead.
func (p *Proc) commRendezvous(c *Comm, contrib any, compute func(map[int]any) any) (any, int64) {
	seq := c.seq.Add(1)
	key := collKey{ctx: c.ctx, seq: seq}
	defer p.world.setBlocked(p, collTarget(p.world, key, c.group, p.rank, c.name))()
	return p.world.rendezvous(key, len(c.group), c.myRank, p.clock.Load(), contrib, compute)
}

// newCommFromSpec builds this process's view of a freshly created
// communicator.
type commSpec struct {
	ctx    int64
	group  []int
	remote []int
	name   string
}

func (p *Proc) newComm(spec commSpec) *Comm {
	my := -1
	for i, r := range spec.group {
		if r == p.rank {
			my = i
			break
		}
	}
	c := &Comm{proc: p, handle: p.newHandle(), ctx: spec.ctx, group: spec.group,
		myRank: my, remote: spec.remote, name: spec.name}
	p.registerComm(c)
	return c
}

// --- Communicator management calls ------------------------------------------

// CommDup duplicates a communicator (collective).
func (p *Proc) CommDup(c *Comm) (*Comm, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	var nc *Comm
	args := []Value{vComm(c), vComm(nil)}
	p.icall(fCommDup, args, func() {
		res, maxClk := p.commRendezvous(c, nil, func(m map[int]any) any {
			return p.world.ctxSeq.Add(1)
		})
		p.raiseClock(maxClk + costLatency*int64(log2ceil(len(c.group))))
		nc = p.newComm(commSpec{ctx: res.(int64), group: c.group, remote: c.remote, name: c.name + "+dup"})
		args[1].I = nc.handle
	})
	return nc, nil
}

// CommIdup starts a non-blocking duplicate; the new communicator must
// not be used before the request completes.
func (p *Proc) CommIdup(c *Comm) (*Comm, *Request, error) {
	if err := c.checkUsable(); err != nil {
		return nil, nil, err
	}
	// The comm object exists immediately; its ctx is filled in on
	// completion, as with MPI_Comm_idup's deferred semantics.
	nc := &Comm{proc: p, handle: p.newHandle(), group: c.group, myRank: c.myRank,
		remote: c.remote, name: c.name + "+idup"}
	p.registerComm(nc)
	req := p.newRequest(rkColl)
	args := []Value{vComm(c), vComm(nc), vReq(req)}
	p.icall(fCommIdup, args, func() {
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), c.myRank, clk, nil,
				func(m map[int]any) any { return p.world.ctxSeq.Add(1) })
			nc.ctx = res.(int64)
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return nc, req, nil
}

// CommSplit partitions a communicator by color; ranks passing the same
// color form a new communicator ordered by (key, old rank). Color
// Undefined yields a nil communicator.
func (p *Proc) CommSplit(c *Comm, color, key int) (*Comm, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	var nc *Comm
	args := []Value{vComm(c), vColor(color), vKey(key), vComm(nil)}
	p.icall(fCommSplit, args, func() {
		nc = p.splitBody(c, color, key, fmt.Sprintf("%s/split", c.name))
		args[3] = vComm(nc)
	})
	return nc, nil
}

type splitContrib struct {
	color, key, worldRank, oldRank int
}

type splitResult struct {
	ctxByColor   map[int]int64
	groupByColor map[int][]int
}

func (p *Proc) splitBody(c *Comm, color, key int, name string) *Comm {
	contrib := splitContrib{color: color, key: key, worldRank: p.rank, oldRank: c.myRank}
	res, maxClk := p.commRendezvous(c, contrib, func(m map[int]any) any {
		byColor := map[int][]splitContrib{}
		for _, v := range m {
			sc := v.(splitContrib)
			if sc.color == Undefined {
				continue
			}
			byColor[sc.color] = append(byColor[sc.color], sc)
		}
		colors := make([]int, 0, len(byColor))
		for col := range byColor {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		out := splitResult{ctxByColor: map[int]int64{}, groupByColor: map[int][]int{}}
		for _, col := range colors {
			members := byColor[col]
			sort.Slice(members, func(i, j int) bool {
				if members[i].key != members[j].key {
					return members[i].key < members[j].key
				}
				return members[i].oldRank < members[j].oldRank
			})
			ranks := make([]int, len(members))
			for i, sc := range members {
				ranks[i] = sc.worldRank
			}
			out.ctxByColor[col] = p.world.ctxSeq.Add(1)
			out.groupByColor[col] = ranks
		}
		return out
	})
	p.raiseClock(maxClk + costLatency*int64(log2ceil(len(c.group))))
	if color == Undefined {
		return nil
	}
	sr := res.(splitResult)
	return p.newComm(commSpec{ctx: sr.ctxByColor[color], group: sr.groupByColor[color], name: name})
}

// CommSplitType splits by locality; CommTypeShared groups ranks on the
// same simulated node (16 ranks per node).
func (p *Proc) CommSplitType(c *Comm, splitType, key int) (*Comm, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	var nc *Comm
	args := []Value{vComm(c), vInt(splitType), vKey(key), vComm(nil)}
	p.icall(fCommSplitType, args, func() {
		color := p.rank / 16
		if splitType != CommTypeShared {
			color = Undefined
		}
		nc = p.splitBody(c, color, key, fmt.Sprintf("%s/node", c.name))
		args[3] = vComm(nc)
	})
	return nc, nil
}

// CommCreate builds a communicator from a subgroup. Every member of c
// must call; callers outside the group receive nil.
func (p *Proc) CommCreate(c *Comm, g *Group) (*Comm, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	if g == nil || g.freed {
		return nil, fmt.Errorf("mpi: CommCreate with invalid group")
	}
	var nc *Comm
	args := []Value{vComm(c), vGroup(g), vComm(nil)}
	p.icall(fCommCreate, args, func() {
		// All members contribute; the group contents come from the
		// caller's group object (identical on all ranks, per MPI).
		res, maxClk := p.commRendezvous(c, nil, func(m map[int]any) any {
			return p.world.ctxSeq.Add(1)
		})
		p.raiseClock(maxClk + costLatency*int64(log2ceil(len(c.group))))
		inGroup := false
		for _, r := range g.ranks {
			if r == p.rank {
				inGroup = true
				break
			}
		}
		if inGroup {
			ranks := make([]int, len(g.ranks))
			copy(ranks, g.ranks)
			nc = p.newComm(commSpec{ctx: res.(int64), group: ranks, name: c.name + "/create"})
		}
		args[2] = vComm(nc)
	})
	return nc, nil
}

// CommFree releases a communicator.
func (p *Proc) CommFree(c *Comm) error {
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vComm(c)}
	p.icall(fCommFree, args, func() {
		c.freed = true
	})
	return nil
}

// CommGroup returns the local group of the communicator.
func (p *Proc) CommGroup(c *Comm) (*Group, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	var g *Group
	args := []Value{vComm(c), vGroup(nil)}
	p.icall(fCommGroup, args, func() {
		ranks := make([]int, len(c.group))
		copy(ranks, c.group)
		g = &Group{handle: p.newHandle(), ranks: ranks}
		args[1] = vGroup(g)
	})
	return g, nil
}

// CommCompare compares two communicators.
func (p *Proc) CommCompare(a, b *Comm) (int, error) {
	if err := a.checkUsable(); err != nil {
		return Unequal, err
	}
	if err := b.checkUsable(); err != nil {
		return Unequal, err
	}
	var res int
	args := []Value{vComm(a), vComm(b), vInt(0)}
	p.icall(fCommCompare, args, func() {
		switch {
		case a == b || a.ctx == b.ctx:
			res = Ident
		case equalRanks(a.group, b.group):
			res = Congruent
		case sameSet(a.group, b.group):
			res = Similar
		default:
			res = Unequal
		}
		args[2].I = int64(res)
	})
	return res, nil
}

// CommSetName names a communicator.
func (p *Proc) CommSetName(c *Comm, name string) error {
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vComm(c), vString(name)}
	p.icall(fCommSetName, args, func() {
		c.name = name
	})
	return nil
}

// CommGetName returns the communicator's name.
func (p *Proc) CommGetName(c *Comm) (string, error) {
	if err := c.checkUsable(); err != nil {
		return "", err
	}
	var name string
	args := []Value{vComm(c), vString(""), vInt(0)}
	p.icall(fCommGetName, args, func() {
		name = c.name
		args[1].S = name
		args[2].I = int64(len(name))
	})
	return name, nil
}

// CommTestInter reports whether c is an inter-communicator.
func (p *Proc) CommTestInter(c *Comm) (bool, error) {
	if err := c.checkUsable(); err != nil {
		return false, err
	}
	var flag bool
	args := []Value{vComm(c), vInt(0)}
	p.icall(fCommTestInter, args, func() {
		flag = c.remote != nil
		args[1].I = b2i(flag)
	})
	return flag, nil
}

// CommRemoteSize returns the size of the remote group of an
// inter-communicator.
func (p *Proc) CommRemoteSize(c *Comm) (int, error) {
	if err := c.checkUsable(); err != nil {
		return 0, err
	}
	if c.remote == nil {
		return 0, fmt.Errorf("mpi: CommRemoteSize on intra-communicator")
	}
	var n int
	args := []Value{vComm(c), vInt(0)}
	p.icall(fCommRemoteSize, args, func() {
		n = len(c.remote)
		args[1].I = int64(n)
	})
	return n, nil
}

// IntercommCreate builds an inter-communicator from two disjoint
// intra-communicators bridged by leaders that share peerComm.
func (p *Proc) IntercommCreate(localComm *Comm, localLeader int, peerComm *Comm, remoteLeader, tag int) (*Comm, error) {
	if err := localComm.checkUsable(); err != nil {
		return nil, err
	}
	var nc *Comm
	args := []Value{vComm(localComm), vRank(localLeader), vComm(peerComm), vRank(remoteLeader), vTag(tag), vComm(nil)}
	p.icall(fIntercommCreate, args, func() {
		type leaderInfo struct {
			group []int
		}
		var ctx int64
		var remote []int
		if localComm.myRank == localLeader {
			// Leaders meet on an out-of-band slot keyed by peer ctx+tag.
			key := collKey{ctx: peerComm.ctx, seq: int64(tag) | (1 << 40), oob: true}
			remoteLeaderWorld := -1
			if remoteLeader >= 0 && remoteLeader < len(peerComm.group) {
				remoteLeaderWorld = peerComm.group[remoteLeader]
			}
			dereg := p.world.setBlocked(p, &waitTarget{
				detail: fmt.Sprintf("leader exchange, peer comm=%s, tag=%d", peerComm.name, tag),
				peers:  staticPeers(remoteLeaderWorld),
			})
			res, _ := p.world.rendezvous(key, 2, peerComm.myRank, p.clock.Load(),
				leaderInfo{group: localComm.group}, func(m map[int]any) any {
					groups := map[int][]int{}
					for r, v := range m {
						groups[r] = v.(leaderInfo).group
					}
					return map[string]any{"ctx": p.world.ctxSeq.Add(1), "groups": groups}
				})
			dereg()
			rm := res.(map[string]any)
			ctx = rm["ctx"].(int64)
			for r, g := range rm["groups"].(map[int][]int) {
				if r != peerComm.myRank {
					remote = g
				}
			}
		}
		// Broadcast (ctx, remote) within the local comm.
		type bc struct {
			ctx    int64
			remote []int
		}
		var contrib any
		if localComm.myRank == localLeader {
			contrib = bc{ctx: ctx, remote: remote}
		}
		res, maxClk := p.commRendezvous(localComm, contrib, func(m map[int]any) any {
			for _, v := range m {
				if b, ok := v.(bc); ok {
					return b
				}
			}
			return bc{}
		})
		b := res.(bc)
		p.raiseClock(maxClk + costLatency*int64(log2ceil(len(localComm.group))+1))
		group := make([]int, len(localComm.group))
		copy(group, localComm.group)
		nc = p.newComm(commSpec{ctx: b.ctx, group: group, remote: b.remote, name: "intercomm"})
		args[5] = vComm(nc)
	})
	return nc, nil
}

// IntercommMerge merges an inter-communicator into an intra-
// communicator; the group with high=true is ordered after the other.
func (p *Proc) IntercommMerge(c *Comm, high bool) (*Comm, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	if c.remote == nil {
		return nil, fmt.Errorf("mpi: IntercommMerge on intra-communicator")
	}
	var nc *Comm
	args := []Value{vComm(c), vInt(int(b2i(high)))}
	args = append(args, vComm(nil))
	p.icall(fIntercommMerge, args, func() {
		type mergeContrib struct {
			high      bool
			worldRank int
		}
		need := len(c.group) + len(c.remote)
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		members := make([]int, 0, need)
		members = append(members, c.group...)
		members = append(members, c.remote...)
		defer p.world.setBlocked(p, collTargetWorldKeyed(p.world, key, members, p.rank, c.name))()
		res, maxClk := p.world.rendezvous(key, need, p.rank, p.clock.Load(),
			mergeContrib{high: high, worldRank: p.rank}, func(m map[int]any) any {
				var lows, highs []int
				for _, v := range m {
					mc := v.(mergeContrib)
					if mc.high {
						highs = append(highs, mc.worldRank)
					} else {
						lows = append(lows, mc.worldRank)
					}
				}
				sort.Ints(lows)
				sort.Ints(highs)
				merged := append(lows, highs...)
				return map[string]any{"ctx": p.world.ctxSeq.Add(1), "group": merged}
			})
		rm := res.(map[string]any)
		p.raiseClock(maxClk + costLatency*int64(log2ceil(need)))
		nc = p.newComm(commSpec{ctx: rm["ctx"].(int64), group: rm["group"].([]int), name: "merged"})
		args[2] = vComm(nc)
	})
	return nc, nil
}

func equalRanks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, r := range a {
		m[r] = true
	}
	for _, r := range b {
		if !m[r] {
			return false
		}
	}
	return true
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}
