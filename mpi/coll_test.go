package mpi

import (
	"sync/atomic"
	"testing"
)

func TestBarrierSynchronizes(t *testing.T) {
	var before, after atomic.Int32
	run(t, 8, func(p *Proc) {
		before.Add(1)
		p.Barrier(p.World())
		if before.Load() != 8 {
			t.Error("barrier released before all ranks arrived")
		}
		after.Add(1)
	})
	if after.Load() != 8 {
		t.Fatal("not all ranks passed the barrier")
	}
}

func TestBcast(t *testing.T) {
	run(t, 6, func(p *Proc) {
		buf := p.Alloc(16)
		if p.Rank() == 2 {
			for i := 0; i < 4; i++ {
				putInt32(buf.Bytes()[i*4:], int32(i*11))
			}
		}
		if err := p.Bcast(buf.Ptr(0), 4, Int, 2, p.World()); err != nil {
			t.Error(err)
		}
		for i := 0; i < 4; i++ {
			if got := getInt32(buf.Bytes()[i*4:]); got != int32(i*11) {
				t.Errorf("rank %d slot %d = %d", p.Rank(), i, got)
			}
		}
	})
}

func TestGatherScatterRoundtrip(t *testing.T) {
	const n = 5
	run(t, n, func(p *Proc) {
		w := p.World()
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4 * n)
		putInt32(sbuf.Bytes(), int32(p.Rank()*2))
		if err := p.Gather(sbuf.Ptr(0), 1, Int, rbuf.Ptr(0), 1, Int, 0, w); err != nil {
			t.Error(err)
		}
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				if got := getInt32(rbuf.Bytes()[i*4:]); got != int32(i*2) {
					t.Errorf("gather slot %d = %d", i, got)
				}
				putInt32(rbuf.Bytes()[i*4:], int32(i*3))
			}
		}
		out := p.Alloc(4)
		if err := p.Scatter(rbuf.Ptr(0), 1, Int, out.Ptr(0), 1, Int, 0, w); err != nil {
			t.Error(err)
		}
		if got := getInt32(out.Bytes()); got != int32(p.Rank()*3) {
			t.Errorf("scatter rank %d = %d", p.Rank(), got)
		}
	})
}

func TestGathervScatterv(t *testing.T) {
	const n = 4
	run(t, n, func(p *Proc) {
		w := p.World()
		mycount := p.Rank() + 1 // 1,2,3,4 ints
		sbuf := p.Alloc(4 * mycount)
		for i := 0; i < mycount; i++ {
			putInt32(sbuf.Bytes()[i*4:], int32(p.Rank()*10+i))
		}
		counts := []int{1, 2, 3, 4}
		displs := []int{0, 1, 3, 6}
		rbuf := p.Alloc(4 * 10)
		if err := p.Gatherv(sbuf.Ptr(0), mycount, Int, rbuf.Ptr(0), counts, displs, Int, 0, w); err != nil {
			t.Error(err)
		}
		if p.Rank() == 0 {
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					got := getInt32(rbuf.Bytes()[(displs[r]+i)*4:])
					if got != int32(r*10+i) {
						t.Errorf("gatherv rank %d elem %d = %d", r, i, got)
					}
				}
			}
		}
		out := p.Alloc(4 * mycount)
		if err := p.Scatterv(rbuf.Ptr(0), counts, displs, Int, out.Ptr(0), mycount, Int, 0, w); err != nil {
			t.Error(err)
		}
		for i := 0; i < mycount; i++ {
			if got := getInt32(out.Bytes()[i*4:]); got != int32(p.Rank()*10+i) {
				t.Errorf("scatterv rank %d elem %d = %d", p.Rank(), i, got)
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	const n = 7
	run(t, n, func(p *Proc) {
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4 * n)
		putInt32(sbuf.Bytes(), int32(100+p.Rank()))
		if err := p.Allgather(sbuf.Ptr(0), 1, Int, rbuf.Ptr(0), 1, Int, p.World()); err != nil {
			t.Error(err)
		}
		for i := 0; i < n; i++ {
			if got := getInt32(rbuf.Bytes()[i*4:]); got != int32(100+i) {
				t.Errorf("rank %d slot %d = %d", p.Rank(), i, got)
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	run(t, n, func(p *Proc) {
		sbuf := p.Alloc(4 * n)
		rbuf := p.Alloc(4 * n)
		for i := 0; i < n; i++ {
			putInt32(sbuf.Bytes()[i*4:], int32(p.Rank()*100+i))
		}
		if err := p.Alltoall(sbuf.Ptr(0), 1, Int, rbuf.Ptr(0), 1, Int, p.World()); err != nil {
			t.Error(err)
		}
		for i := 0; i < n; i++ {
			want := int32(i*100 + p.Rank())
			if got := getInt32(rbuf.Bytes()[i*4:]); got != want {
				t.Errorf("rank %d from %d: got %d want %d", p.Rank(), i, got, want)
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 3
	run(t, n, func(p *Proc) {
		// Rank r sends (r+1) ints to each peer.
		cnt := p.Rank() + 1
		scounts := make([]int, n)
		sdispls := make([]int, n)
		for i := range scounts {
			scounts[i] = cnt
			sdispls[i] = i * cnt
		}
		sbuf := p.Alloc(4 * cnt * n)
		for i := 0; i < cnt*n; i++ {
			putInt32(sbuf.Bytes()[i*4:], int32(p.Rank()*1000+i))
		}
		rcounts := make([]int, n)
		rdispls := make([]int, n)
		off := 0
		for i := 0; i < n; i++ {
			rcounts[i] = i + 1
			rdispls[i] = off
			off += i + 1
		}
		rbuf := p.Alloc(4 * off)
		if err := p.Alltoallv(sbuf.Ptr(0), scounts, sdispls, Int,
			rbuf.Ptr(0), rcounts, rdispls, Int, p.World()); err != nil {
			t.Error(err)
		}
		for i := 0; i < n; i++ {
			for k := 0; k < rcounts[i]; k++ {
				got := getInt32(rbuf.Bytes()[(rdispls[i]+k)*4:])
				want := int32(i*1000 + p.Rank()*(i+1) + k)
				if got != want {
					t.Errorf("rank %d from %d elem %d: got %d want %d", p.Rank(), i, k, got, want)
				}
			}
		}
	})
}

func TestReduceAllreduce(t *testing.T) {
	const n = 6
	run(t, n, func(p *Proc) {
		w := p.World()
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4)
		putInt32(sbuf.Bytes(), int32(p.Rank()+1))
		if err := p.Reduce(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpSum, 0, w); err != nil {
			t.Error(err)
		}
		want := int32(n * (n + 1) / 2)
		if p.Rank() == 0 && getInt32(rbuf.Bytes()) != want {
			t.Errorf("reduce sum = %d, want %d", getInt32(rbuf.Bytes()), want)
		}
		if err := p.Allreduce(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpMax, w); err != nil {
			t.Error(err)
		}
		if getInt32(rbuf.Bytes()) != int32(n) {
			t.Errorf("allreduce max = %d, want %d", getInt32(rbuf.Bytes()), n)
		}
	})
}

func TestAllreduceDouble(t *testing.T) {
	run(t, 4, func(p *Proc) {
		sbuf := p.Alloc(8)
		rbuf := p.Alloc(8)
		f := float64(p.Rank()) + 0.5
		putF64(sbuf.Bytes(), f)
		if err := p.Allreduce(sbuf.Ptr(0), rbuf.Ptr(0), 1, Double, OpSum, p.World()); err != nil {
			t.Error(err)
		}
		if got := getF64(rbuf.Bytes()); got != 0.5+1.5+2.5+3.5 {
			t.Errorf("double sum = %v", got)
		}
	})
}

func TestScanExscan(t *testing.T) {
	const n = 5
	run(t, n, func(p *Proc) {
		w := p.World()
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4)
		putInt32(sbuf.Bytes(), int32(p.Rank()+1))
		if err := p.Scan(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpSum, w); err != nil {
			t.Error(err)
		}
		r := p.Rank() + 1
		if got := getInt32(rbuf.Bytes()); got != int32(r*(r+1)/2) {
			t.Errorf("scan rank %d = %d", p.Rank(), got)
		}
		putInt32(rbuf.Bytes(), -1)
		if err := p.Exscan(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpSum, w); err != nil {
			t.Error(err)
		}
		if p.Rank() == 0 {
			if got := getInt32(rbuf.Bytes()); got != -1 {
				t.Errorf("exscan rank 0 buffer modified: %d", got)
			}
		} else {
			if got := getInt32(rbuf.Bytes()); got != int32(r*(r-1)/2) {
				t.Errorf("exscan rank %d = %d", p.Rank(), got)
			}
		}
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const n = 4
	run(t, n, func(p *Proc) {
		sbuf := p.Alloc(4 * n)
		rbuf := p.Alloc(4)
		for i := 0; i < n; i++ {
			putInt32(sbuf.Bytes()[i*4:], int32(i+1))
		}
		if err := p.ReduceScatterBlock(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpSum, p.World()); err != nil {
			t.Error(err)
		}
		if got := getInt32(rbuf.Bytes()); got != int32(n*(p.Rank()+1)) {
			t.Errorf("rank %d got %d", p.Rank(), got)
		}
	})
}

func TestNonblockingCollectives(t *testing.T) {
	const n = 4
	run(t, n, func(p *Proc) {
		w := p.World()
		// Ibarrier
		req, err := p.Ibarrier(w)
		if err != nil {
			t.Fatal(err)
		}
		p.Wait(req, nil)
		// Ibcast
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			putInt32(buf.Bytes(), 77)
		}
		req, _ = p.Ibcast(buf.Ptr(0), 1, Int, 0, w)
		p.Wait(req, nil)
		if getInt32(buf.Bytes()) != 77 {
			t.Errorf("Ibcast rank %d = %d", p.Rank(), getInt32(buf.Bytes()))
		}
		// Iallreduce
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4)
		putInt32(sbuf.Bytes(), 1)
		req, _ = p.Iallreduce(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpSum, w)
		p.Wait(req, nil)
		if getInt32(rbuf.Bytes()) != n {
			t.Errorf("Iallreduce = %d", getInt32(rbuf.Bytes()))
		}
		// Iallgather
		all := p.Alloc(4 * n)
		putInt32(sbuf.Bytes(), int32(p.Rank()))
		req, _ = p.Iallgather(sbuf.Ptr(0), 1, Int, all.Ptr(0), 1, Int, w)
		p.Wait(req, nil)
		for i := 0; i < n; i++ {
			if getInt32(all.Bytes()[i*4:]) != int32(i) {
				t.Errorf("Iallgather slot %d", i)
			}
		}
		// Ialltoall
		sb := p.Alloc(4 * n)
		rb := p.Alloc(4 * n)
		for i := 0; i < n; i++ {
			putInt32(sb.Bytes()[i*4:], int32(p.Rank()*10+i))
		}
		req, _ = p.Ialltoall(sb.Ptr(0), 1, Int, rb.Ptr(0), 1, Int, w)
		p.Wait(req, nil)
		for i := 0; i < n; i++ {
			if getInt32(rb.Bytes()[i*4:]) != int32(i*10+p.Rank()) {
				t.Errorf("Ialltoall slot %d", i)
			}
		}
		// Igather / Iscatter / Ireduce
		req, _ = p.Igather(sbuf.Ptr(0), 1, Int, all.Ptr(0), 1, Int, 0, w)
		p.Wait(req, nil)
		req, _ = p.Iscatter(all.Ptr(0), 1, Int, rbuf.Ptr(0), 1, Int, 0, w)
		p.Wait(req, nil)
		req, _ = p.Ireduce(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpMin, 0, w)
		p.Wait(req, nil)
	})
}

func TestCollectivesOnSubComm(t *testing.T) {
	run(t, 6, func(p *Proc) {
		w := p.World()
		sub, err := p.CommSplit(w, p.Rank()%2, p.Rank())
		if err != nil {
			t.Fatal(err)
		}
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4)
		putInt32(sbuf.Bytes(), 1)
		if err := p.Allreduce(sbuf.Ptr(0), rbuf.Ptr(0), 1, Int, OpSum, sub); err != nil {
			t.Fatal(err)
		}
		if got := getInt32(rbuf.Bytes()); got != 3 {
			t.Errorf("subcomm allreduce = %d, want 3", got)
		}
	})
}

func TestCollectiveOrderIndependentAcrossComms(t *testing.T) {
	// Two communicators used in interleaved order must not cross-match.
	run(t, 4, func(p *Proc) {
		w := p.World()
		dup, _ := p.CommDup(w)
		a := p.Alloc(4)
		b := p.Alloc(4)
		putInt32(a.Bytes(), 1)
		putInt32(b.Bytes(), 2)
		ra := p.Alloc(4)
		rb := p.Alloc(4)
		if p.Rank()%2 == 0 {
			p.Allreduce(a.Ptr(0), ra.Ptr(0), 1, Int, OpSum, w)
			p.Allreduce(b.Ptr(0), rb.Ptr(0), 1, Int, OpSum, dup)
		} else {
			// Same order is required per comm, but interleaving with
			// other comms' traffic is fine.
			p.Allreduce(a.Ptr(0), ra.Ptr(0), 1, Int, OpSum, w)
			p.Allreduce(b.Ptr(0), rb.Ptr(0), 1, Int, OpSum, dup)
		}
		if getInt32(ra.Bytes()) != 4 || getInt32(rb.Bytes()) != 8 {
			t.Errorf("cross-comm mixup: %d %d", getInt32(ra.Bytes()), getInt32(rb.Bytes()))
		}
	})
}

func TestInterCommCollectiveRejected(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		half, _ := p.CommSplit(w, p.Rank()/2, p.Rank())
		remoteLeader := 2
		if p.Rank() >= 2 {
			remoteLeader = 0
		}
		inter, err := p.IntercommCreate(half, 0, w, remoteLeader, 42)
		if err != nil {
			t.Fatal(err)
		}
		buf := p.Alloc(4)
		if err := p.Barrier(inter); err == nil {
			t.Error("collective on intercomm should be rejected")
		}
		_ = buf
	})
}

func putF64(b []byte, v float64) {
	putInt64(b, int64FromF64(v))
}

func getF64(b []byte) float64 { return f64FromInt64(getInt64(b)) }
