package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// ringBody is an SPMD loop of sendrecv-style traffic used by the fault
// tests: each rank passes a token around the ring iters times.
func ringBody(iters int) func(p *Proc) {
	return func(p *Proc) {
		w := p.World()
		n := p.Size()
		buf := p.Alloc(8)
		out := p.Alloc(8)
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		for i := 0; i < iters; i++ {
			p.Sendrecv(buf.Ptr(0), 1, Double, right, 7,
				out.Ptr(0), 1, Double, left, 7, w, nil)
		}
	}
}

func TestInjectedCrashPromptReturn(t *testing.T) {
	// Rank 2 dies at its 10th call; the other ranks block on the ring
	// and must be unblocked by the idle detector well before the run
	// timeout (the acceptance bound is sub-second beyond the quiesce
	// window).
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultCrash, Rank: 2, AtCall: 10}}}
	start := time.Now()
	err := RunOpt(4, Options{Timeout: 60 * time.Second, FaultPlan: plan}, ringBody(1000))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected a run error after injected crash")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("run took %v to halt after crash; want prompt return", elapsed)
	}
	ranks := FailedRanks(err)
	if ranks == nil {
		t.Fatalf("error is not a *RunError: %v", err)
	}
	var ce *CrashError
	if !errors.As(ranks[2], &ce) || !ce.Injected || ce.Call != 10 {
		t.Fatalf("rank 2 error = %v, want injected CrashError at call 10", ranks[2])
	}
	// Satellite: RunOpt aggregates every rank's error, so the blocked
	// survivors show up too, wrapping ErrRevoked.
	revoked := 0
	for r, e := range ranks {
		if r == 2 {
			continue
		}
		if !errors.Is(e, ErrRevoked) {
			t.Errorf("rank %d error = %v, want ErrRevoked wrap", r, e)
		}
		revoked++
	}
	if revoked == 0 {
		t.Error("no surviving rank recorded an ErrRevoked unwind")
	}
	// The report names the dead rank.
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("cause %v does not carry a diagnosis", err)
	}
	if len(de.Crashed) != 1 || de.Crashed[0] != 2 {
		t.Errorf("diagnosis crashed=%v, want [2]", de.Crashed)
	}
}

func TestFaultDelayMsg(t *testing.T) {
	// A delayed message still arrives (run succeeds) and carries its
	// virtual delay: the receiver's clock must have advanced past it.
	const delay = int64(5_000_000_000) // 5 virtual seconds
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultDelayMsg, Rank: 0, AtCall: 1, Delay: delay}}}
	clocks := make([]int64, 2)
	err := RunOpt(2, Options{Timeout: 30 * time.Second, FaultPlan: plan}, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(8)
		if p.Rank() == 0 {
			putInt64(buf.Bytes(), 99)
			if err := p.Send(buf.Ptr(0), 1, Double, 1, 3, w); err != nil {
				t.Error(err)
			}
		} else {
			if err := p.Recv(buf.Ptr(0), 1, Double, 0, 3, w, nil); err != nil {
				t.Error(err)
			}
			if got := getInt64(buf.Bytes()); got != 99 {
				t.Errorf("payload %d, want 99", got)
			}
		}
		clocks[p.Rank()] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if clocks[1] < delay {
		t.Errorf("receiver clock %d did not absorb the %d ns injected delay", clocks[1], delay)
	}
}

func TestFaultDropMsgDiagnosed(t *testing.T) {
	// Rank 0's only send is silently dropped; rank 1 blocks in the
	// matching Recv and rank 0 in a barrier. The idle detector must
	// halt the job and name the stuck receive.
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultDropMsg, Rank: 0, AtCall: 1}}}
	err := RunOpt(2, Options{Timeout: 60 * time.Second, FaultPlan: plan}, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(8)
		if p.Rank() == 0 {
			p.Send(buf.Ptr(0), 1, Double, 1, 11, w)
			p.Barrier(w)
		} else {
			p.Recv(buf.Ptr(0), 1, Double, 0, 11, w, nil)
			p.Barrier(w)
		}
	})
	if err == nil {
		t.Fatal("expected dropped message to be diagnosed as a hang")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v carries no diagnosis", err)
	}
	msg := de.Error()
	if !strings.Contains(msg, "MPI_Recv") || !strings.Contains(msg, "src=0, tag=11") {
		t.Errorf("report does not name the stuck receive:\n%s", msg)
	}
	if !strings.Contains(msg, "MPI_Barrier") {
		t.Errorf("report does not name the stuck barrier:\n%s", msg)
	}
}

// crashSignature condenses a run error into the deterministic part of
// the failure: which ranks died, at which call, by what kind.
func crashSignature(err error) string {
	var parts []string
	re := &RunError{}
	if !errors.As(err, &re) {
		return "<none>"
	}
	for _, r := range re.FailedRanks() {
		var ce *CrashError
		if errors.As(re.Ranks[r], &ce) {
			parts = append(parts, ce.Error())
		}
	}
	return strings.Join(parts, "; ")
}

func TestFaultPlanDeterminismAcrossRuns(t *testing.T) {
	// Probability faults sample the per-rank deterministic RNG: two
	// runs with the same seed and plan must fail identically.
	plan := &FaultPlan{Faults: []Fault{
		{Kind: FaultCrash, Rank: 1, Probability: 0.02},
		{Kind: FaultCrash, Rank: 3, Probability: 0.02},
	}}
	sig := ""
	for i := 0; i < 2; i++ {
		err := RunOpt(4, Options{Seed: 42, Timeout: 60 * time.Second, FaultPlan: plan}, ringBody(500))
		if err == nil {
			t.Fatal("expected probabilistic crash to fire within 500 iterations")
		}
		s := crashSignature(err)
		if s == "<none>" || s == "" {
			t.Fatalf("run %d: no crash recorded in %v", i, err)
		}
		if i == 0 {
			sig = s
		} else if s != sig {
			t.Fatalf("crash signature diverged across identical runs:\n  first:  %s\n  second: %s", sig, s)
		}
	}
}

func TestCollectiveFaultDiagnosed(t *testing.T) {
	// Rank 1 refuses its 5th collective: the remaining members block in
	// the barrier and the report names them waiting on rank 1.
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultCollFail, Rank: 1, AtCall: 5}}}
	err := RunOpt(3, Options{Timeout: 60 * time.Second, FaultPlan: plan}, func(p *Proc) {
		w := p.World()
		for i := 0; i < 10; i++ {
			p.Barrier(w)
		}
	})
	if err == nil {
		t.Fatal("expected collective fault to halt the job")
	}
	var ce *CrashError
	if !errors.As(FailedRanks(err)[1], &ce) || !ce.Collective {
		t.Fatalf("rank 1 error = %v, want collective CrashError", FailedRanks(err)[1])
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v carries no diagnosis", err)
	}
	found := false
	for _, op := range de.Blocked {
		if op.Op == "MPI_Barrier" {
			for _, wr := range op.WaitsOn {
				if wr == 1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("no blocked barrier waits on the dead rank:\n%s", de.Error())
	}
}
