package mpi

import (
	"encoding/binary"
	"math"
)

func putInt64(b []byte, v int64)   { binary.LittleEndian.PutUint64(b, uint64(v)) }
func getInt64(b []byte) int64      { return int64(binary.LittleEndian.Uint64(b)) }
func int64FromF64(v float64) int64 { return int64(math.Float64bits(v)) }
func f64FromInt64(v int64) float64 { return math.Float64frombits(uint64(v)) }
