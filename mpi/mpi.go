// Package mpi is a simulated MPI runtime in pure Go. It exists so that
// the Pilgrim tracer reproduction has a real substrate to intercept:
// ranks are goroutines, point-to-point messages obey MPI matching
// semantics (tags, wildcards, non-overtaking order), non-blocking
// operations complete asynchronously and non-deterministically,
// collectives synchronize whole communicators, and communicators,
// groups, derived datatypes and Cartesian topologies behave like their
// MPI counterparts.
//
// Every call is delivered to an optional per-process Interceptor as a
// fully-populated CallRecord (all arguments, in and out, plus virtual
// timestamps), playing the role of the PMPI profiling layer that the
// real Pilgrim uses. The runtime also exposes out-of-band collectives
// (see OOB) so a tracer can do its own bookkeeping — e.g. agreeing on
// communicator symbolic ids — without those operations appearing in
// the trace, exactly like calling PMPI_ functions from a wrapper.
//
// The simulator tracks a virtual clock per rank (advanced by a simple
// latency/bandwidth/noise model and by explicit Compute calls), which
// gives the tracer realistic durations and intervals to compress.
package mpi

import (
	"fmt"

	"github.com/hpcrepro/pilgrim/internal/mpispec"
)

// Special rank values, mirroring MPI.
const (
	ProcNull  = -1 // MPI_PROC_NULL: operations complete immediately, no data
	AnySource = -2 // MPI_ANY_SOURCE
	AnyTag    = -1 // MPI_ANY_TAG (tags are otherwise >= 0)
	Undefined = -3 // MPI_UNDEFINED
)

// Comm comparison results (MPI_Comm_compare).
const (
	Ident     = 0
	Congruent = 1
	Similar   = 2
	Unequal   = 3
)

// Comm split types.
const (
	CommTypeShared = 1 // MPI_COMM_TYPE_SHARED
)

// Status describes a completed receive, as in MPI_Status. Count is in
// bytes received; Source and Tag identify the matched message.
type Status struct {
	Source    int
	Tag       int
	Count     int
	Cancelled bool
	Error     int
}

// StatusIgnore mirrors MPI_STATUS_IGNORE: pass nil *Status instead.

// Op identifies a reduction operation.
type Op struct {
	handle  int64
	name    string
	combine func(dst, src []byte, dt *Datatype)
	commute bool
	user    bool
}

// Handle returns the runtime handle of the op (for interception).
func (o *Op) Handle() int64 { return o.handle }

// Predefined reduction operations. The combine functions operate on
// int64 or float64 lanes depending on the datatype.
var (
	OpSum  = &Op{handle: hOpBase + 0, name: "MPI_SUM", combine: combineSum, commute: true}
	OpMax  = &Op{handle: hOpBase + 1, name: "MPI_MAX", combine: combineMax, commute: true}
	OpMin  = &Op{handle: hOpBase + 2, name: "MPI_MIN", combine: combineMin, commute: true}
	OpProd = &Op{handle: hOpBase + 3, name: "MPI_PROD", combine: combineProd, commute: true}
	OpLand = &Op{handle: hOpBase + 4, name: "MPI_LAND", combine: combineLand, commute: true}
	OpLor  = &Op{handle: hOpBase + 5, name: "MPI_LOR", combine: combineLor, commute: true}
	OpBand = &Op{handle: hOpBase + 6, name: "MPI_BAND", combine: combineBand, commute: true}
	OpBor  = &Op{handle: hOpBase + 7, name: "MPI_BOR", combine: combineBor, commute: true}
)

// Reserved handle ranges. Predefined objects have well-known handles
// shared by all ranks; per-process objects allocate upward from
// hDynamicBase.
const (
	hCommWorld   = 1
	hCommSelf    = 2
	hTypeBase    = 16  // predefined datatypes: 16..47
	hOpBase      = 64  // predefined ops: 64..79
	hDynamicBase = 256 // first dynamically assigned handle
)

// Ptr is a typed pointer into a simulated allocation: the address is
// what a tracer sees; the data slice is what the runtime moves.
type Ptr struct {
	addr uint64
	data []byte
}

// Addr returns the simulated address (0 for the nil pointer).
func (p Ptr) Addr() uint64 { return p.addr }

// Bytes returns the addressable payload.
func (p Ptr) Bytes() []byte { return p.data }

// NilPtr is the null buffer (e.g. MPI_IN_PLACE stand-in or zero-size
// transfers).
var NilPtr = Ptr{}

// Buffer is a simulated heap allocation obtained from Proc.Alloc. Its
// base address is unique within the owning process, and allocation /
// release are reported to the interceptor like malloc/free.
type Buffer struct {
	proc   *Proc
	addr   uint64
	data   []byte
	device int32
	freed  bool
}

// Addr returns the simulated base address.
func (b *Buffer) Addr() uint64 { return b.addr }

// Len returns the allocation size in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Device returns the simulated device id (0 = host).
func (b *Buffer) Device() int32 { return b.device }

// Bytes returns the whole allocation.
func (b *Buffer) Bytes() []byte { return b.data }

// Ptr returns a pointer at byte offset off into the buffer. Passing
// interior pointers to MPI calls exercises the tracer's
// (segment id, displacement) encoding.
func (b *Buffer) Ptr(off int) Ptr {
	if off < 0 || off > len(b.data) {
		panic(fmt.Sprintf("mpi: offset %d outside buffer of %d bytes", off, len(b.data)))
	}
	return Ptr{addr: b.addr + uint64(off), data: b.data[off:]}
}

// Free releases the buffer and notifies the interceptor.
func (b *Buffer) Free() {
	if b.freed {
		return
	}
	b.freed = true
	if ic := b.proc.interceptor; ic != nil {
		ic.MemFree(b.addr)
	}
}

// Interceptor re-exports the hook interface tracers implement.
type Interceptor = mpispec.Interceptor

// CallRecord re-exports the intercepted-call record type.
type CallRecord = mpispec.CallRecord
