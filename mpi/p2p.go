package mpi

import (
	"fmt"
	"sync"
)

// mailbox holds the unmatched sends and posted receives for one
// (context, destination) pair. MPI's non-overtaking rule is preserved
// by matching in arrival/post order.
type mailbox struct {
	mu    sync.Mutex
	sends []*envelope
	recvs []*recvPost
}

// envelope is a message in flight.
type envelope struct {
	src     int // comm rank of sender (in the receiver's addressing space)
	tag     int
	data    []byte
	sentAt  int64    // sender virtual clock at send
	sreq    *Request // synchronous send to complete on match (nil otherwise)
	matched bool
}

// recvPost is a posted receive waiting for a matching send.
type recvPost struct {
	box       *mailbox
	srcSel    int // comm rank or AnySource
	tagSel    int // tag or AnyTag
	buf       []byte
	req       *Request
	withdrawn bool
}

// withdraw removes the post from its mailbox (for Cancel). Reports
// whether the post was still pending.
func (rp *recvPost) withdraw() bool {
	rp.box.mu.Lock()
	defer rp.box.mu.Unlock()
	for i, q := range rp.box.recvs {
		if q == rp {
			rp.box.recvs = append(rp.box.recvs[:i], rp.box.recvs[i+1:]...)
			rp.withdrawn = true
			return true
		}
	}
	return false
}

func (w *World) box(ctx int64, destWorld int) *mailbox {
	key := mbKey{ctx, destWorld}
	w.mbMu.Lock()
	defer w.mbMu.Unlock()
	b := w.boxes[key]
	if b == nil {
		b = &mailbox{}
		w.boxes[key] = b
	}
	return b
}

func (e *envelope) matches(rp *recvPost) bool {
	return (rp.srcSel == AnySource || rp.srcSel == e.src) &&
		(rp.tagSel == AnyTag || rp.tagSel == e.tag)
}

// deliver copies the payload into the post's buffer and completes the
// receive request.
func deliver(e *envelope, rp *recvPost) {
	n := copy(rp.buf, e.data)
	st := Status{Source: e.src, Tag: e.tag, Count: n}
	avail := e.sentAt + transferCost(len(e.data))
	rp.req.complete(st, avail)
	if e.sreq != nil {
		e.sreq.complete(Status{Source: e.src, Tag: e.tag, Count: len(e.data)}, avail)
	}
	e.matched = true
}

// postSend routes an envelope to the destination mailbox, matching a
// posted receive if possible.
func (w *World) postSend(ctx int64, destWorld int, e *envelope) {
	w.progress.Add(1)
	b := w.box(ctx, destWorld)
	b.mu.Lock()
	for i, rp := range b.recvs {
		if e.matches(rp) {
			b.recvs = append(b.recvs[:i], b.recvs[i+1:]...)
			b.mu.Unlock()
			deliver(e, rp)
			return
		}
	}
	b.sends = append(b.sends, e)
	b.mu.Unlock()
}

// postRecv registers a receive, matching a pending send if possible.
func (w *World) postRecv(ctx int64, destWorld int, rp *recvPost) {
	w.progress.Add(1)
	b := w.box(ctx, destWorld)
	rp.box = b
	b.mu.Lock()
	for i, e := range b.sends {
		if e.matches(rp) {
			b.sends = append(b.sends[:i], b.sends[i+1:]...)
			b.mu.Unlock()
			deliver(e, rp)
			return
		}
	}
	b.recvs = append(b.recvs, rp)
	b.mu.Unlock()
}

// probe looks for a matching pending send without removing it.
func (p *Proc) probe(c *Comm, source, tag int) (Status, bool) {
	b := p.world.box(c.ctx, p.rank)
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.sends {
		if (source == AnySource || source == e.src) && (tag == AnyTag || tag == e.tag) {
			return Status{Source: e.src, Tag: e.tag, Count: len(e.data)}, true
		}
	}
	return Status{}, false
}

// resolveDest maps a communicator-relative destination rank to a world
// rank; intercommunicators address the remote group.
func (c *Comm) resolveDest(rank int) (int, error) {
	g := c.group
	if c.remote != nil {
		g = c.remote
	}
	if rank < 0 || rank >= len(g) {
		return 0, fmt.Errorf("mpi: rank %d out of range for %s (size %d)", rank, c.name, len(g))
	}
	return g[rank], nil
}

// sendCommon implements the blocking sends. Standard mode buffers
// (completes locally); synchronous mode waits for the match.
func (p *Proc) sendCommon(id funcIDT, buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm, syncMode bool) error {
	if err := dt.checkUsable(); err != nil {
		return err
	}
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(dest), vTag(tag), vComm(c)}
	var err error
	p.icall(id, args, func() {
		if dest == ProcNull {
			return
		}
		var destWorld int
		destWorld, err = c.resolveDest(dest)
		if err != nil {
			return
		}
		nbytes := count * dt.size
		data := make([]byte, nbytes)
		copy(data, buf.data)
		p.advanceClock(transferCost(nbytes) / 4) // injection cost
		e := &envelope{src: c.senderRankFor(), tag: tag, data: data, sentAt: p.clock.Load()}
		if syncMode {
			sreq := p.newRequest(rkSend)
			sreq.target = sendTarget(c, destWorld, dest, tag)
			e.sreq = sreq
			p.postEnvelope(c.ctx, destWorld, e)
			sreq.waitDone()
			sreq.consume()
		} else {
			p.postEnvelope(c.ctx, destWorld, e)
		}
	})
	return err
}

// senderRankFor returns the rank the receiver will see as the source:
// the sender's rank within its own (local) group.
func (c *Comm) senderRankFor() int { return c.myRank }

// Send is the standard-mode blocking send (buffered in this
// simulator, like eager-protocol MPI sends).
func (p *Proc) Send(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) error {
	return p.sendCommon(fSend, buf, count, dt, dest, tag, c, false)
}

// Bsend is the buffered send.
func (p *Proc) Bsend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) error {
	return p.sendCommon(fBsend, buf, count, dt, dest, tag, c, false)
}

// Ssend is the synchronous send: returns only after the receiver
// matched the message.
func (p *Proc) Ssend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) error {
	return p.sendCommon(fSsend, buf, count, dt, dest, tag, c, true)
}

// Rsend is the ready send (treated as standard mode).
func (p *Proc) Rsend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) error {
	return p.sendCommon(fRsend, buf, count, dt, dest, tag, c, false)
}

// Recv is the blocking receive. status may be nil.
func (p *Proc) Recv(buf Ptr, count int, dt *Datatype, source, tag int, c *Comm, status *Status) error {
	if err := dt.checkUsable(); err != nil {
		return err
	}
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(source), vTag(tag), vComm(c), vStatus()}
	var st Status
	p.icall(fRecv, args, func() {
		st = p.recvBody(buf, count, dt, source, tag, c)
		setStatus(&args[6], st)
	})
	if status != nil {
		*status = st
	}
	return nil
}

// recvBody blocks until a matching message arrives and returns its
// status.
func (p *Proc) recvBody(buf Ptr, count int, dt *Datatype, source, tag int, c *Comm) Status {
	if source == ProcNull {
		return Status{Source: ProcNull, Tag: AnyTag, Count: 0}
	}
	req := p.newRequest(rkRecv)
	req.target = recvTarget(c, source, tag)
	nbytes := count * dt.size
	dst := buf.data
	if len(dst) > nbytes {
		dst = dst[:nbytes]
	}
	rp := &recvPost{srcSel: source, tagSel: tag, buf: dst, req: req}
	req.post = rp
	p.world.postRecv(c.ctx, p.rank, rp)
	req.waitDone()
	return req.consume()
}

// isendCommon implements the non-blocking sends.
func (p *Proc) isendCommon(id funcIDT, buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm, syncMode bool) (*Request, error) {
	if err := dt.checkUsable(); err != nil {
		return nil, err
	}
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	req := p.newRequest(rkSend)
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(dest), vTag(tag), vComm(c), vReq(req)}
	var err error
	p.icall(id, args, func() {
		if dest == ProcNull {
			req.complete(Status{Source: ProcNull, Tag: AnyTag}, p.clock.Load())
			return
		}
		var destWorld int
		destWorld, err = c.resolveDest(dest)
		if err != nil {
			return
		}
		nbytes := count * dt.size
		data := make([]byte, nbytes)
		copy(data, buf.data)
		e := &envelope{src: c.senderRankFor(), tag: tag, data: data, sentAt: p.clock.Load()}
		if syncMode {
			e.sreq = req
			req.target = sendTarget(c, destWorld, dest, tag)
			p.postEnvelope(c.ctx, destWorld, e)
		} else {
			p.postEnvelope(c.ctx, destWorld, e)
			req.complete(Status{Source: c.myRank, Tag: tag, Count: nbytes}, p.clock.Load())
		}
	})
	if err != nil {
		return nil, err
	}
	return req, nil
}

// Isend starts a standard-mode non-blocking send.
func (p *Proc) Isend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.isendCommon(fIsend, buf, count, dt, dest, tag, c, false)
}

// Ibsend starts a buffered non-blocking send.
func (p *Proc) Ibsend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.isendCommon(fIbsend, buf, count, dt, dest, tag, c, false)
}

// Issend starts a synchronous non-blocking send.
func (p *Proc) Issend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.isendCommon(fIssend, buf, count, dt, dest, tag, c, true)
}

// Irsend starts a ready-mode non-blocking send.
func (p *Proc) Irsend(buf Ptr, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, error) {
	return p.isendCommon(fIrsend, buf, count, dt, dest, tag, c, false)
}

// Irecv starts a non-blocking receive.
func (p *Proc) Irecv(buf Ptr, count int, dt *Datatype, source, tag int, c *Comm) (*Request, error) {
	if err := dt.checkUsable(); err != nil {
		return nil, err
	}
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	req := p.newRequest(rkRecv)
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(source), vTag(tag), vComm(c), vReq(req)}
	p.icall(fIrecv, args, func() {
		if source == ProcNull {
			req.complete(Status{Source: ProcNull, Tag: AnyTag}, p.clock.Load())
			return
		}
		req.target = recvTarget(c, source, tag)
		nbytes := count * dt.size
		dst := buf.data
		if len(dst) > nbytes {
			dst = dst[:nbytes]
		}
		rp := &recvPost{srcSel: source, tagSel: tag, buf: dst, req: req}
		req.post = rp
		p.world.postRecv(c.ctx, p.rank, rp)
	})
	return req, nil
}

// Sendrecv performs a combined send and receive.
func (p *Proc) Sendrecv(sendbuf Ptr, sendcount int, sendtype *Datatype, dest, sendtag int,
	recvbuf Ptr, recvcount int, recvtype *Datatype, source, recvtag int, c *Comm, status *Status) error {
	if err := sendtype.checkUsable(); err != nil {
		return err
	}
	if err := recvtype.checkUsable(); err != nil {
		return err
	}
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype), vRank(dest), vTag(sendtag),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vRank(source), vTag(recvtag),
		vComm(c), vStatus()}
	var st Status
	p.icall(fSendrecv, args, func() {
		// Send side (buffered), then blocking receive.
		if dest != ProcNull {
			if destWorld, err := c.resolveDest(dest); err == nil {
				nbytes := sendcount * sendtype.size
				data := make([]byte, nbytes)
				copy(data, sendbuf.data)
				e := &envelope{src: c.senderRankFor(), tag: sendtag, data: data, sentAt: p.clock.Load()}
				p.postEnvelope(c.ctx, destWorld, e)
			}
		}
		st = p.recvBody(recvbuf, recvcount, recvtype, source, recvtag, c)
		setStatus(&args[11], st)
	})
	if status != nil {
		*status = st
	}
	return nil
}

// SendrecvReplace sends and receives using a single buffer.
func (p *Proc) SendrecvReplace(buf Ptr, count int, dt *Datatype, dest, sendtag, source, recvtag int, c *Comm, status *Status) error {
	if err := dt.checkUsable(); err != nil {
		return err
	}
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(dest), vTag(sendtag),
		vRank(source), vTag(recvtag), vComm(c), vStatus()}
	var st Status
	p.icall(fSendrecvReplace, args, func() {
		if dest != ProcNull {
			if destWorld, err := c.resolveDest(dest); err == nil {
				nbytes := count * dt.size
				data := make([]byte, nbytes)
				copy(data, buf.data)
				e := &envelope{src: c.senderRankFor(), tag: sendtag, data: data, sentAt: p.clock.Load()}
				p.postEnvelope(c.ctx, destWorld, e)
			}
		}
		st = p.recvBody(buf, count, dt, source, recvtag, c)
		setStatus(&args[8], st)
	})
	if status != nil {
		*status = st
	}
	return nil
}

// Iprobe checks for a matching message without receiving it.
func (p *Proc) Iprobe(source, tag int, c *Comm, status *Status) (bool, error) {
	if err := c.checkUsable(); err != nil {
		return false, err
	}
	args := []Value{vRank(source), vTag(tag), vComm(c), vInt(0), vStatus()}
	var found bool
	var st Status
	p.icall(fIprobe, args, func() {
		st, found = p.probe(c, source, tag)
		args[3].I = b2i(found)
		if found {
			setStatus(&args[4], st)
		}
	})
	if status != nil && found {
		*status = st
	}
	return found, nil
}

// Probe blocks until a matching message is available.
func (p *Proc) Probe(source, tag int, c *Comm, status *Status) error {
	if err := c.checkUsable(); err != nil {
		return err
	}
	args := []Value{vRank(source), vTag(tag), vComm(c), vStatus()}
	var st Status
	p.icall(fProbe, args, func() {
		defer p.world.setBlocked(p, recvTarget(c, source, tag))()
		for {
			var found bool
			st, found = p.probe(c, source, tag)
			if found {
				break
			}
			p.world.checkRevoked()
			// Busy-wait politely: no cond is signalled on message
			// arrival for probes, so yield.
			yield()
		}
		setStatus(&args[3], st)
	})
	if status != nil {
		*status = st
	}
	return nil
}
