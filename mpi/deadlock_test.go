package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDeadlockTagMismatchReport(t *testing.T) {
	// Classic tag mismatch: rank 0 receives tag 5 from rank 1, while
	// rank 1 synchronously sends tag 7 to rank 0. Neither can ever
	// complete; the report must name both operations and the cycle.
	err := RunOpt(2, Options{Timeout: 60 * time.Second}, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(8)
		if p.Rank() == 0 {
			p.Recv(buf.Ptr(0), 1, Double, 1, 5, w, nil)
		} else {
			p.Ssend(buf.Ptr(0), 1, Double, 0, 7, w)
		}
	})
	if err == nil {
		t.Fatal("expected deadlock")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a deadlock diagnosis", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked ops = %+v, want both ranks", de.Blocked)
	}
	msg := de.Error()
	for _, want := range []string{
		"rank 0: MPI_Recv(src=1, tag=5, comm=MPI_COMM_WORLD)",
		"rank 1: MPI_Ssend(dest=0, tag=7, comm=MPI_COMM_WORLD)",
		"cycle:",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
	if len(de.Cycle) != 2 {
		t.Errorf("cycle = %v, want the 2-rank wait loop", de.Cycle)
	}
}

func TestDeadlockFourRankRing(t *testing.T) {
	// All four ranks receive from their left neighbour before anyone
	// sends: a 4-cycle in the wait-for graph.
	const n = 4
	err := RunOpt(n, Options{Timeout: 60 * time.Second}, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(8)
		left := (p.Rank() - 1 + n) % n
		right := (p.Rank() + 1) % n
		p.Recv(buf.Ptr(0), 1, Double, left, 0, w, nil)
		p.Send(buf.Ptr(0), 1, Double, right, 0, w)
	})
	if err == nil {
		t.Fatal("expected deadlock")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a deadlock diagnosis", err)
	}
	if len(de.Blocked) != n {
		t.Fatalf("blocked %d ranks, want %d:\n%s", len(de.Blocked), n, de.Error())
	}
	if len(de.Cycle) != n {
		t.Errorf("cycle = %v, want all %d ranks", de.Cycle, n)
	}
	for _, op := range de.Blocked {
		wantPeer := (op.Rank - 1 + n) % n
		if op.Op != "MPI_Recv" || len(op.WaitsOn) != 1 || op.WaitsOn[0] != wantPeer {
			t.Errorf("rank %d blocked op %+v, want MPI_Recv waiting on %d", op.Rank, op, wantPeer)
		}
	}
	// Every rank must have been unwound with a revocation error, not
	// left hanging (satellite: full error aggregation).
	ranks := FailedRanks(err)
	for r := 0; r < n; r++ {
		if !errors.Is(ranks[r], ErrRevoked) {
			t.Errorf("rank %d error = %v, want ErrRevoked wrap", r, ranks[r])
		}
	}
}

func TestDeadlockCollectiveMissingRank(t *testing.T) {
	// Ranks 0-2 enter a barrier; rank 3 sits in an unmatched receive.
	// The collective report must name exactly the member that never
	// arrived.
	err := RunOpt(4, Options{Timeout: 60 * time.Second}, func(p *Proc) {
		w := p.World()
		if p.Rank() == 3 {
			buf := p.Alloc(8)
			p.Recv(buf.Ptr(0), 1, Double, 0, 9, w, nil)
			return
		}
		p.Barrier(w)
	})
	if err == nil {
		t.Fatal("expected deadlock")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a deadlock diagnosis", err)
	}
	barriers := 0
	for _, op := range de.Blocked {
		switch op.Op {
		case "MPI_Barrier":
			barriers++
			if len(op.WaitsOn) != 1 || op.WaitsOn[0] != 3 {
				t.Errorf("rank %d barrier waits on %v, want exactly [3]", op.Rank, op.WaitsOn)
			}
		case "MPI_Recv":
			if op.Rank != 3 {
				t.Errorf("unexpected blocked recv on rank %d", op.Rank)
			}
		}
	}
	if barriers != 3 {
		t.Errorf("%d blocked barrier ops, want 3:\n%s", barriers, de.Error())
	}
}

func TestAbortPropagatesPromptly(t *testing.T) {
	// Rank 0 aborts; every other rank is parked in a receive that will
	// never match and must unwind well under a second.
	start := time.Now()
	err := RunOpt(4, Options{Timeout: 60 * time.Second}, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			time.Sleep(20 * time.Millisecond) // let the others block first
			p.Abort(w, 13)
		}
		buf := p.Alloc(8)
		p.Recv(buf.Ptr(0), 1, Double, (p.Rank()+1)%4, 1, w, nil)
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected abort to fail the run")
	}
	if elapsed > time.Second {
		t.Fatalf("abort took %v to tear the job down", elapsed)
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Rank != 0 || ae.Code != 13 {
		t.Fatalf("error %v does not carry the abort (rank 0, code 13)", err)
	}
	ranks := FailedRanks(err)
	for r := 1; r < 4; r++ {
		if !errors.Is(ranks[r], ErrRevoked) {
			t.Errorf("rank %d error = %v, want ErrRevoked wrap", r, ranks[r])
		}
	}
}
