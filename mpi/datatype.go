package mpi

import "fmt"

// baseKindT distinguishes the primitive element a datatype bottoms out
// in; reductions pick their lane arithmetic from it.
type baseKindT uint8

const (
	baseInt baseKindT = iota
	baseFloat32
	baseFloat64
	baseByteK
)

// typeKind records how a derived datatype was constructed, so the
// trace can recreate its layout.
type typeKind uint8

const (
	tkNamed typeKind = iota
	tkContiguous
	tkVector
	tkIndexed
	tkStruct
	tkDup
)

// Datatype describes an MPI datatype. Named (predefined) types have
// well-known handles shared across ranks; derived types are created
// per process via the Type_* calls and must be committed before use.
type Datatype struct {
	handle    int64
	name      string
	kind      typeKind
	size      int // total bytes of actual data per element
	extent    int // span in bytes (size of one element's footprint)
	base      baseKindT
	lane      int // size of one primitive lane for reductions
	committed bool
	freed     bool

	// construction arguments, preserved for the trace
	oldtype *Datatype
	count   int
	blocks  []int
	displs  []int
}

// Handle returns the runtime handle (predefined types share handles
// across all ranks).
func (d *Datatype) Handle() int64 { return d.handle }

// Size returns the number of data bytes in one element of the type.
func (d *Datatype) Size() int { return d.size }

// Extent returns the span of the type in bytes.
func (d *Datatype) Extent() int { return d.extent }

// Name returns the type name (predefined) or a constructor tag.
func (d *Datatype) Name() string { return d.name }

func (d *Datatype) baseKind() baseKindT { return d.base }
func (d *Datatype) laneSize() int       { return d.lane }

// LaneSize returns the size in bytes of one primitive element of the
// type (what MPI_Get_elements counts).
func (d *Datatype) LaneSize() int { return d.lane }

func named(off int64, name string, size int, base baseKindT) *Datatype {
	return &Datatype{handle: hTypeBase + off, name: name, kind: tkNamed,
		size: size, extent: size, base: base, lane: size, committed: true}
}

// Predefined datatypes (a representative subset of the MPI basic
// types; all ranks share these objects and handles).
var (
	Byte         = named(0, "MPI_BYTE", 1, baseByteK)
	Char         = named(1, "MPI_CHAR", 1, baseInt)
	Int          = named(2, "MPI_INT", 4, baseInt)
	Long         = named(3, "MPI_LONG", 8, baseInt)
	Float        = named(4, "MPI_FLOAT", 4, baseFloat32)
	Double       = named(5, "MPI_DOUBLE", 8, baseFloat64)
	Short        = named(6, "MPI_SHORT", 2, baseInt)
	Unsigned     = named(7, "MPI_UNSIGNED", 4, baseInt)
	LongLong     = named(8, "MPI_LONG_LONG", 8, baseInt)
	Int8T        = named(9, "MPI_INT8_T", 1, baseInt)
	Int16T       = named(10, "MPI_INT16_T", 2, baseInt)
	Int32T       = named(11, "MPI_INT32_T", 4, baseInt)
	Int64T       = named(12, "MPI_INT64_T", 8, baseInt)
	UnsignedChar = named(13, "MPI_UNSIGNED_CHAR", 1, baseInt)
	DoubleInt    = named(14, "MPI_DOUBLE_INT", 16, baseFloat64)
)

func (d *Datatype) checkUsable() error {
	if d == nil {
		return fmt.Errorf("mpi: nil datatype")
	}
	if d.freed {
		return fmt.Errorf("mpi: datatype %s used after free", d.name)
	}
	if !d.committed {
		return fmt.Errorf("mpi: datatype %s not committed", d.name)
	}
	return nil
}
