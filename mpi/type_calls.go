package mpi

import "fmt"

// TypeContiguous creates a datatype of count consecutive oldtype
// elements.
func (p *Proc) TypeContiguous(count int, oldtype *Datatype) (*Datatype, error) {
	if oldtype == nil || oldtype.freed {
		return nil, fmt.Errorf("mpi: TypeContiguous with invalid oldtype")
	}
	var nt *Datatype
	args := []Value{vInt(count), vType(oldtype), vType(nil)}
	p.icall(fTypeContiguous, args, func() {
		nt = &Datatype{handle: p.newHandle(), name: "contiguous", kind: tkContiguous,
			size: count * oldtype.size, extent: count * oldtype.extent,
			base: oldtype.base, lane: oldtype.lane, oldtype: oldtype, count: count}
		args[2] = vType(nt)
	})
	return nt, nil
}

// TypeVector creates a strided datatype: count blocks of blocklength
// oldtype elements, stride elements apart.
func (p *Proc) TypeVector(count, blocklength, stride int, oldtype *Datatype) (*Datatype, error) {
	if oldtype == nil || oldtype.freed {
		return nil, fmt.Errorf("mpi: TypeVector with invalid oldtype")
	}
	var nt *Datatype
	args := []Value{vInt(count), vInt(blocklength), vInt(stride), vType(oldtype), vType(nil)}
	p.icall(fTypeVector, args, func() {
		extent := 0
		if count > 0 {
			extent = ((count-1)*stride + blocklength) * oldtype.extent
		}
		nt = &Datatype{handle: p.newHandle(), name: "vector", kind: tkVector,
			size: count * blocklength * oldtype.size, extent: extent,
			base: oldtype.base, lane: oldtype.lane, oldtype: oldtype, count: count,
			blocks: []int{blocklength}, displs: []int{stride}}
		args[4] = vType(nt)
	})
	return nt, nil
}

// TypeIndexed creates a datatype from per-block lengths and
// displacements (in oldtype elements).
func (p *Proc) TypeIndexed(blocklengths, displacements []int, oldtype *Datatype) (*Datatype, error) {
	if oldtype == nil || oldtype.freed {
		return nil, fmt.Errorf("mpi: TypeIndexed with invalid oldtype")
	}
	if len(blocklengths) != len(displacements) {
		return nil, fmt.Errorf("mpi: TypeIndexed length mismatch")
	}
	var nt *Datatype
	args := []Value{vInt(len(blocklengths)), vIntArray(blocklengths), vIntArray(displacements), vType(oldtype), vType(nil)}
	p.icall(fTypeIndexed, args, func() {
		size, maxEnd := 0, 0
		for i, bl := range blocklengths {
			size += bl * oldtype.size
			if end := (displacements[i] + bl) * oldtype.extent; end > maxEnd {
				maxEnd = end
			}
		}
		bl := make([]int, len(blocklengths))
		copy(bl, blocklengths)
		dl := make([]int, len(displacements))
		copy(dl, displacements)
		nt = &Datatype{handle: p.newHandle(), name: "indexed", kind: tkIndexed,
			size: size, extent: maxEnd, base: oldtype.base, lane: oldtype.lane,
			oldtype: oldtype, count: len(blocklengths), blocks: bl, displs: dl}
		args[4] = vType(nt)
	})
	return nt, nil
}

// TypeCreateStruct creates a datatype from blocks of (possibly
// different) types at byte displacements.
func (p *Proc) TypeCreateStruct(blocklengths, displacements []int, types []*Datatype) (*Datatype, error) {
	if len(blocklengths) != len(displacements) || len(blocklengths) != len(types) {
		return nil, fmt.Errorf("mpi: TypeCreateStruct length mismatch")
	}
	handles := make([]int, len(types))
	for i, t := range types {
		if t == nil || t.freed {
			return nil, fmt.Errorf("mpi: TypeCreateStruct with invalid member type %d", i)
		}
		handles[i] = int(t.handle)
	}
	var nt *Datatype
	args := []Value{vInt(len(blocklengths)), vIntArray(blocklengths), vIntArray(displacements), vIntArray(handles), vType(nil)}
	p.icall(fTypeCreateStruct, args, func() {
		size, maxEnd := 0, 0
		base := baseByteK
		lane := 1
		for i, bl := range blocklengths {
			size += bl * types[i].size
			if end := displacements[i] + bl*types[i].extent; end > maxEnd {
				maxEnd = end
			}
			if i == 0 {
				base = types[i].base
				lane = types[i].lane
			}
		}
		bl := make([]int, len(blocklengths))
		copy(bl, blocklengths)
		dl := make([]int, len(displacements))
		copy(dl, displacements)
		nt = &Datatype{handle: p.newHandle(), name: "struct", kind: tkStruct,
			size: size, extent: maxEnd, base: base, lane: lane,
			count: len(blocklengths), blocks: bl, displs: dl}
		args[4] = vType(nt)
	})
	return nt, nil
}

// TypeCommit commits a derived datatype for use in communication.
func (p *Proc) TypeCommit(dt *Datatype) error {
	if dt == nil || dt.freed {
		return fmt.Errorf("mpi: TypeCommit on invalid datatype")
	}
	args := []Value{vType(dt)}
	p.icall(fTypeCommit, args, func() {
		dt.committed = true
	})
	return nil
}

// TypeFree releases a derived datatype.
func (p *Proc) TypeFree(dt *Datatype) error {
	if dt == nil || dt.freed {
		return fmt.Errorf("mpi: TypeFree on invalid datatype")
	}
	if dt.kind == tkNamed {
		return fmt.Errorf("mpi: cannot free predefined datatype %s", dt.name)
	}
	args := []Value{vType(dt)}
	p.icall(fTypeFree, args, func() {
		dt.freed = true
	})
	return nil
}

// TypeSize returns the data size of one element.
func (p *Proc) TypeSize(dt *Datatype) int {
	var n int
	args := []Value{vType(dt), vInt(0)}
	p.icall(fTypeSize, args, func() {
		n = dt.size
		args[1].I = int64(n)
	})
	return n
}

// TypeGetExtent returns the lower bound (always 0 here) and extent.
func (p *Proc) TypeGetExtent(dt *Datatype) (lb, extent int) {
	args := []Value{vType(dt), vInt(0), vInt(0)}
	p.icall(fTypeGetExtent, args, func() {
		extent = dt.extent
		args[2].I = int64(extent)
	})
	return 0, extent
}

// TypeDup duplicates a datatype.
func (p *Proc) TypeDup(dt *Datatype) (*Datatype, error) {
	if dt == nil || dt.freed {
		return nil, fmt.Errorf("mpi: TypeDup on invalid datatype")
	}
	var nt *Datatype
	args := []Value{vType(dt), vType(nil)}
	p.icall(fTypeDup, args, func() {
		cp := *dt
		cp.handle = p.newHandle()
		cp.kind = tkDup
		cp.oldtype = dt
		nt = &cp
		args[1] = vType(nt)
	})
	return nt, nil
}

// OpCreate registers a user-defined reduction.
func (p *Proc) OpCreate(fn func(dst, src []byte, dt *Datatype), commute bool) (*Op, error) {
	if fn == nil {
		return nil, fmt.Errorf("mpi: OpCreate with nil function")
	}
	var op *Op
	args := []Value{vInt(0), vInt(int(b2i(commute))), vOp(nil)}
	p.icall(fOpCreate, args, func() {
		op = &Op{handle: p.newHandle(), name: "user_op", combine: fn, commute: commute, user: true}
		args[2] = vOp(op)
	})
	return op, nil
}

// OpFree releases a user-defined reduction.
func (p *Proc) OpFree(op *Op) error {
	if op == nil || !op.user {
		return fmt.Errorf("mpi: OpFree on invalid op")
	}
	args := []Value{vOp(op)}
	p.icall(fOpFree, args, func() {})
	return nil
}
