package mpi

import "fmt"

// cartInfo stores the Cartesian topology attached to a communicator.
type cartInfo struct {
	dims    []int
	periods []bool
	coords  []int // this process's coordinates
}

// CartCreate attaches a Cartesian topology over c (reorder is
// accepted but ignored, as permitted by the standard). All members
// must call; members beyond the product of dims receive nil.
func (p *Proc) CartCreate(c *Comm, dims []int, periods []bool, reorder bool) (*Comm, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: CartCreate with non-positive dimension")
		}
		total *= d
	}
	if total > len(c.group) {
		return nil, fmt.Errorf("mpi: Cartesian grid of %d exceeds communicator size %d", total, len(c.group))
	}
	perInts := make([]int, len(periods))
	for i, b := range periods {
		if b {
			perInts[i] = 1
		}
	}
	var nc *Comm
	args := []Value{vComm(c), vInt(len(dims)), vIntArray(dims), vIntArray(perInts),
		vInt(int(b2i(reorder))), vComm(nil)}
	p.icall(fCartCreate, args, func() {
		res, maxClk := p.commRendezvous(c, nil, func(m map[int]any) any {
			return p.world.ctxSeq.Add(1)
		})
		p.raiseClock(maxClk + costLatency*int64(log2ceil(len(c.group))))
		if c.myRank >= total {
			return // not part of the grid
		}
		group := make([]int, total)
		copy(group, c.group[:total])
		nc = p.newComm(commSpec{ctx: res.(int64), group: group, name: c.name + "/cart"})
		ds := make([]int, len(dims))
		copy(ds, dims)
		ps := make([]bool, len(periods))
		copy(ps, periods)
		nc.cart = &cartInfo{dims: ds, periods: ps, coords: rankToCoords(nc.myRank, ds)}
		args[5] = vComm(nc)
	})
	return nc, nil
}

// rankToCoords converts a row-major rank into grid coordinates.
func rankToCoords(rank int, dims []int) []int {
	coords := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		coords[i] = rank % dims[i]
		rank /= dims[i]
	}
	return coords
}

// coordsToRank converts grid coordinates into a row-major rank,
// applying periodicity; returns ProcNull for out-of-range coordinates
// on non-periodic dimensions.
func coordsToRank(coords, dims []int, periods []bool) int {
	rank := 0
	for i, c := range coords {
		if c < 0 || c >= dims[i] {
			if i < len(periods) && periods[i] {
				c = ((c % dims[i]) + dims[i]) % dims[i]
			} else {
				return ProcNull
			}
		}
		rank = rank*dims[i] + c
	}
	return rank
}

func (c *Comm) cartOrErr() (*cartInfo, error) {
	if err := c.checkUsable(); err != nil {
		return nil, err
	}
	if c.cart == nil {
		return nil, fmt.Errorf("mpi: communicator %q has no Cartesian topology", c.name)
	}
	return c.cart, nil
}

// CartCoords returns the coordinates of a rank in the grid.
func (p *Proc) CartCoords(c *Comm, rank int) ([]int, error) {
	ci, err := c.cartOrErr()
	if err != nil {
		return nil, err
	}
	coords := rankToCoords(rank, ci.dims)
	args := []Value{vComm(c), vRank(rank), vInt(len(ci.dims)), vIntArray(coords)}
	p.icall(fCartCoords, args, func() {})
	return coords, nil
}

// CartRank returns the rank at the given coordinates.
func (p *Proc) CartRank(c *Comm, coords []int) (int, error) {
	ci, err := c.cartOrErr()
	if err != nil {
		return ProcNull, err
	}
	var r int
	args := []Value{vComm(c), vIntArray(coords), vRank(0)}
	p.icall(fCartRank, args, func() {
		r = coordsToRank(coords, ci.dims, ci.periods)
		args[2].I = int64(r)
	})
	return r, nil
}

// CartShift returns the source and destination ranks for a shift of
// disp along dimension direction.
func (p *Proc) CartShift(c *Comm, direction, disp int) (src, dest int, err error) {
	ci, e := c.cartOrErr()
	if e != nil {
		return ProcNull, ProcNull, e
	}
	if direction < 0 || direction >= len(ci.dims) {
		return ProcNull, ProcNull, fmt.Errorf("mpi: CartShift direction %d out of range", direction)
	}
	args := []Value{vComm(c), vInt(direction), vInt(disp), vRank(0), vRank(0)}
	p.icall(fCartShift, args, func() {
		up := make([]int, len(ci.coords))
		copy(up, ci.coords)
		up[direction] += disp
		dest = coordsToRank(up, ci.dims, ci.periods)
		down := make([]int, len(ci.coords))
		copy(down, ci.coords)
		down[direction] -= disp
		src = coordsToRank(down, ci.dims, ci.periods)
		args[3].I = int64(src)
		args[4].I = int64(dest)
	})
	return src, dest, nil
}

// CartGet returns the grid dimensions, periodicity and this process's
// coordinates.
func (p *Proc) CartGet(c *Comm) (dims []int, periods []bool, coords []int, err error) {
	ci, e := c.cartOrErr()
	if e != nil {
		return nil, nil, nil, e
	}
	perInts := make([]int, len(ci.periods))
	for i, b := range ci.periods {
		if b {
			perInts[i] = 1
		}
	}
	args := []Value{vComm(c), vInt(len(ci.dims)), vIntArray(ci.dims), vIntArray(perInts), vIntArray(ci.coords)}
	p.icall(fCartGet, args, func() {})
	return append([]int(nil), ci.dims...), append([]bool(nil), ci.periods...), append([]int(nil), ci.coords...), nil
}

// CartdimGet returns the number of grid dimensions.
func (p *Proc) CartdimGet(c *Comm) (int, error) {
	ci, err := c.cartOrErr()
	if err != nil {
		return 0, err
	}
	var n int
	args := []Value{vComm(c), vInt(0)}
	p.icall(fCartdimGet, args, func() {
		n = len(ci.dims)
		args[1].I = int64(n)
	})
	return n, nil
}

// CartSub splits the grid into sub-grids keeping the dimensions where
// remain[i] is true (like MPI_Cart_sub).
func (p *Proc) CartSub(c *Comm, remain []bool) (*Comm, error) {
	ci, err := c.cartOrErr()
	if err != nil {
		return nil, err
	}
	if len(remain) != len(ci.dims) {
		return nil, fmt.Errorf("mpi: CartSub remain length mismatch")
	}
	remInts := make([]int, len(remain))
	for i, b := range remain {
		if b {
			remInts[i] = 1
		}
	}
	var nc *Comm
	args := []Value{vComm(c), vIntArray(remInts), vComm(nil)}
	p.icall(fCartSub, args, func() {
		// Color = coordinates along dropped dims; key = row-major rank
		// within kept dims.
		color, key := 0, 0
		for i := range ci.dims {
			if remain[i] {
				key = key*ci.dims[i] + ci.coords[i]
			} else {
				color = color*ci.dims[i] + ci.coords[i]
			}
		}
		nc = p.splitBody(c, color, key, c.name+"/sub")
		if nc != nil {
			var dims []int
			var periods []bool
			var coords []int
			for i := range ci.dims {
				if remain[i] {
					dims = append(dims, ci.dims[i])
					periods = append(periods, ci.periods[i])
					coords = append(coords, ci.coords[i])
				}
			}
			nc.cart = &cartInfo{dims: dims, periods: periods, coords: coords}
		}
		args[2] = vComm(nc)
	})
	return nc, nil
}

// DimsCreate factors nnodes into ndims balanced dimensions; nonzero
// entries of dims are kept fixed (as in MPI_Dims_create).
func (p *Proc) DimsCreate(nnodes, ndims int, dims []int) error {
	if len(dims) < ndims {
		return fmt.Errorf("mpi: DimsCreate dims slice too short")
	}
	args := []Value{vInt(nnodes), vInt(ndims), vIntArray(dims)}
	var err error
	p.icall(fDimsCreate, args, func() {
		err = dimsCreate(nnodes, ndims, dims)
		args[2] = vIntArray(dims)
	})
	return err
}

// dimsCreate is the pure factoring logic (exported for tests via
// DimsCreate).
func dimsCreate(nnodes, ndims int, dims []int) error {
	rem := nnodes
	free := 0
	for i := 0; i < ndims; i++ {
		if dims[i] > 0 {
			if rem%dims[i] != 0 {
				return fmt.Errorf("mpi: DimsCreate cannot satisfy fixed dims")
			}
			rem /= dims[i]
		} else {
			free++
		}
	}
	if free == 0 {
		if rem != 1 {
			return fmt.Errorf("mpi: DimsCreate over-constrained")
		}
		return nil
	}
	// Greedy balanced factorization: repeatedly assign the largest
	// prime factor to the smallest current dimension.
	factors := primeFactors(rem)
	vals := make([]int, free)
	for i := range vals {
		vals[i] = 1
	}
	for i := len(factors) - 1; i >= 0; i-- {
		// smallest dimension gets the next (largest-first) factor
		minIdx := 0
		for j := 1; j < free; j++ {
			if vals[j] < vals[minIdx] {
				minIdx = j
			}
		}
		vals[minIdx] *= factors[i]
	}
	// MPI requires non-increasing order of the computed dims.
	sortDesc(vals)
	vi := 0
	for i := 0; i < ndims; i++ {
		if dims[i] == 0 {
			dims[i] = vals[vi]
			vi++
		}
	}
	return nil
}

func primeFactors(n int) []int {
	var f []int
	for d := 2; d*d <= n; d++ {
		for n%d == 0 {
			f = append(f, d)
			n /= d
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

func sortDesc(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
