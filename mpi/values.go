package mpi

import "github.com/hpcrepro/pilgrim/internal/mpispec"

// Value constructors used when building CallRecords. Kept tiny so the
// per-call wrappers read like the generated prologue/epilogue code.

func vInt(v int) mpispec.Value   { return mpispec.Value{Kind: mpispec.KInt, I: int64(v)} }
func vRank(v int) mpispec.Value  { return mpispec.Value{Kind: mpispec.KRank, I: int64(v)} }
func vTag(v int) mpispec.Value   { return mpispec.Value{Kind: mpispec.KTag, I: int64(v)} }
func vColor(v int) mpispec.Value { return mpispec.Value{Kind: mpispec.KColor, I: int64(v)} }
func vKey(v int) mpispec.Value   { return mpispec.Value{Kind: mpispec.KKey, I: int64(v)} }
func vComm(c *Comm) mpispec.Value {
	if c == nil {
		return mpispec.Value{Kind: mpispec.KComm, I: 0}
	}
	// Arr[0] carries the caller's rank within the communicator: the
	// real tool obtains it via PMPI_Comm_rank, and the tracer needs it
	// for relative-rank encoding (§3.4.2).
	return mpispec.Value{Kind: mpispec.KComm, I: c.handle, Arr: []int64{int64(c.myRank)}}
}
func vType(d *Datatype) mpispec.Value {
	if d == nil {
		return mpispec.Value{Kind: mpispec.KDatatype, I: 0}
	}
	return mpispec.Value{Kind: mpispec.KDatatype, I: d.handle}
}
func vOp(o *Op) mpispec.Value {
	if o == nil {
		return mpispec.Value{Kind: mpispec.KOp, I: 0}
	}
	return mpispec.Value{Kind: mpispec.KOp, I: o.handle}
}
func vGroup(g *Group) mpispec.Value {
	if g == nil {
		return mpispec.Value{Kind: mpispec.KGroup, I: 0}
	}
	return mpispec.Value{Kind: mpispec.KGroup, I: g.handle}
}
func vReq(r *Request) mpispec.Value {
	if r == nil {
		return mpispec.Value{Kind: mpispec.KRequest, I: 0}
	}
	return mpispec.Value{Kind: mpispec.KRequest, I: r.handle}
}
func vReqArray(rs []*Request) mpispec.Value {
	arr := make([]int64, len(rs))
	for i, r := range rs {
		if r != nil {
			arr[i] = r.handle
		}
	}
	return mpispec.Value{Kind: mpispec.KReqArray, Arr: arr}
}
func vPtr(p Ptr) mpispec.Value       { return mpispec.Value{Kind: mpispec.KPtr, I: int64(p.addr)} }
func vString(s string) mpispec.Value { return mpispec.Value{Kind: mpispec.KString, S: s} }
func vIntArray(a []int) mpispec.Value {
	arr := make([]int64, len(a))
	for i, v := range a {
		arr[i] = int64(v)
	}
	return mpispec.Value{Kind: mpispec.KIntArray, Arr: arr}
}
func vStatus() mpispec.Value     { return mpispec.Value{Kind: mpispec.KStatus, Arr: []int64{0, 0}} }
func vStatArray() mpispec.Value  { return mpispec.Value{Kind: mpispec.KStatArray} }
func vIndexArray() mpispec.Value { return mpispec.Value{Kind: mpispec.KIndexArray} }

// setStatus fills a KStatus value from a completed Status (only
// SOURCE and TAG are preserved by the tracer, per §3.3.2, but the
// record carries both).
func setStatus(v *mpispec.Value, st Status) {
	v.Arr = []int64{int64(st.Source), int64(st.Tag)}
}

// setStatArray fills a KStatArray value with [source, tag] pairs.
func setStatArray(v *mpispec.Value, sts []Status) {
	arr := make([]int64, 0, 2*len(sts))
	for _, st := range sts {
		arr = append(arr, int64(st.Source), int64(st.Tag))
	}
	v.Arr = arr
}

// setIndexArray fills a KIndexArray value.
func setIndexArray(v *mpispec.Value, idx []int) {
	arr := make([]int64, len(idx))
	for i, x := range idx {
		arr[i] = int64(x)
	}
	v.Arr = arr
}
