package mpi

import (
	"testing"
)

func TestCommDupIndependence(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		dup, err := p.CommDup(w)
		if err != nil {
			t.Fatal(err)
		}
		if dup.Size() != w.Size() || dup.Rank() != w.Rank() {
			t.Errorf("dup shape mismatch: %d/%d", dup.Size(), dup.Rank())
		}
		if dup.Context() == w.Context() {
			t.Error("dup must have a fresh context")
		}
		if cmp, _ := p.CommCompare(w, dup); cmp != Congruent {
			t.Errorf("CommCompare(w, dup) = %d, want Congruent", cmp)
		}
	})
}

func TestCommSplitColorsAndKeys(t *testing.T) {
	run(t, 6, func(p *Proc) {
		w := p.World()
		// Even/odd split with reversed key ordering.
		color := p.Rank() % 2
		key := -p.Rank()
		sub, err := p.CommSplit(w, color, key)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Size() != 3 {
			t.Fatalf("split size = %d", sub.Size())
		}
		// Reversed keys: highest world rank gets rank 0 in the subcomm.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[p.Rank()]
		if sub.Rank() != wantRank {
			t.Errorf("world rank %d: split rank %d, want %d", p.Rank(), sub.Rank(), wantRank)
		}
	})
}

func TestCommSplitUndefined(t *testing.T) {
	run(t, 4, func(p *Proc) {
		color := 0
		if p.Rank() >= 2 {
			color = Undefined
		}
		sub, err := p.CommSplit(p.World(), color, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Rank() >= 2 && sub != nil {
			t.Error("Undefined color should produce nil comm")
		}
		if p.Rank() < 2 && (sub == nil || sub.Size() != 2) {
			t.Error("defined colors should form a comm of 2")
		}
	})
}

func TestCommCreateSubgroup(t *testing.T) {
	run(t, 5, func(p *Proc) {
		w := p.World()
		g, err := p.CommGroup(w)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := p.GroupIncl(g, []int{0, 2, 4})
		if err != nil {
			t.Fatal(err)
		}
		nc, err := p.CommCreate(w, sub)
		if err != nil {
			t.Fatal(err)
		}
		inGroup := p.Rank()%2 == 0
		if inGroup {
			if nc == nil || nc.Size() != 3 || nc.Rank() != p.Rank()/2 {
				t.Errorf("rank %d: bad subgroup comm", p.Rank())
			}
		} else if nc != nil {
			t.Errorf("rank %d should not be in the new comm", p.Rank())
		}
	})
}

func TestCommIdup(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		nc, req, err := p.CommIdup(w)
		if err != nil {
			t.Fatal(err)
		}
		p.Wait(req, nil)
		if nc.Context() == 0 || nc.Context() == w.Context() {
			t.Error("idup comm has no fresh context after wait")
		}
		// The comm must be usable now.
		buf := p.Alloc(4)
		putInt32(buf.Bytes(), 1)
		r := p.Alloc(4)
		if err := p.Allreduce(buf.Ptr(0), r.Ptr(0), 1, Int, OpSum, nc); err != nil {
			t.Fatal(err)
		}
		if getInt32(r.Bytes()) != 4 {
			t.Errorf("allreduce on idup comm = %d", getInt32(r.Bytes()))
		}
	})
}

func TestCommSetGetName(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			if err := p.CommSetName(w, "my-comm"); err != nil {
				t.Fatal(err)
			}
			name, _ := p.CommGetName(w)
			if name != "my-comm" {
				t.Errorf("name = %q", name)
			}
		}
	})
}

func TestCommFreeThenUseFails(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		dup, _ := p.CommDup(w)
		if err := p.CommFree(dup); err != nil {
			t.Fatal(err)
		}
		buf := p.Alloc(4)
		if err := p.Send(buf.Ptr(0), 1, Int, ProcNull, 0, dup); err == nil {
			t.Error("send on freed comm should fail")
		}
	})
}

func TestIntercommCreateAndMerge(t *testing.T) {
	run(t, 6, func(p *Proc) {
		w := p.World()
		// Two halves of 3 ranks, bridged via world leaders 0 and 3.
		half, err := p.CommSplit(w, p.Rank()/3, p.Rank())
		if err != nil {
			t.Fatal(err)
		}
		remoteLeader := 3
		if p.Rank() >= 3 {
			remoteLeader = 0
		}
		inter, err := p.IntercommCreate(half, 0, w, remoteLeader, 17)
		if err != nil {
			t.Fatal(err)
		}
		if !inter.IsInter() {
			t.Fatal("not an intercomm")
		}
		if flag, _ := p.CommTestInter(inter); !flag {
			t.Error("CommTestInter = false")
		}
		if n, _ := p.CommRemoteSize(inter); n != 3 {
			t.Errorf("remote size = %d", n)
		}
		// p2p across the bridge: local rank i <-> remote rank i.
		buf := p.Alloc(4)
		putInt32(buf.Bytes(), int32(p.Rank()))
		peer := inter.Rank() // same index on the other side
		if p.Rank() < 3 {
			p.Send(buf.Ptr(0), 1, Int, peer, 0, inter)
			p.Recv(buf.Ptr(0), 1, Int, peer, 0, inter, nil)
			if got := getInt32(buf.Bytes()); got != int32(p.Rank()+3) {
				t.Errorf("intercomm recv = %d", got)
			}
		} else {
			p.Recv(buf.Ptr(0), 1, Int, peer, 0, inter, nil)
			if got := getInt32(buf.Bytes()); got != int32(p.Rank()-3) {
				t.Errorf("intercomm recv = %d", got)
			}
			putInt32(buf.Bytes(), int32(p.Rank()))
			p.Send(buf.Ptr(0), 1, Int, peer, 0, inter)
		}
		// Merge into a single intra-comm: low group (first half) first.
		merged, err := p.IntercommMerge(inter, p.Rank() >= 3)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Size() != 6 {
			t.Fatalf("merged size = %d", merged.Size())
		}
		if merged.Rank() != p.Rank() {
			t.Errorf("merged rank = %d, want %d", merged.Rank(), p.Rank())
		}
		// Collective on the merged comm works.
		s := p.Alloc(4)
		r := p.Alloc(4)
		putInt32(s.Bytes(), 1)
		if err := p.Allreduce(s.Ptr(0), r.Ptr(0), 1, Int, OpSum, merged); err != nil {
			t.Fatal(err)
		}
		if getInt32(r.Bytes()) != 6 {
			t.Errorf("merged allreduce = %d", getInt32(r.Bytes()))
		}
	})
}

func TestGroupOperations(t *testing.T) {
	run(t, 6, func(p *Proc) {
		w := p.World()
		g, _ := p.CommGroup(w)
		if p.GroupSize(g) != 6 || p.GroupRank(g) != p.Rank() {
			t.Error("group size/rank mismatch")
		}
		evens, _ := p.GroupIncl(g, []int{0, 2, 4})
		odds, _ := p.GroupExcl(g, []int{0, 2, 4})
		if p.GroupSize(evens) != 3 || p.GroupSize(odds) != 3 {
			t.Error("incl/excl sizes wrong")
		}
		if p.Rank()%2 == 0 {
			if p.GroupRank(evens) != p.Rank()/2 {
				t.Error("even rank wrong")
			}
			if p.GroupRank(odds) != Undefined {
				t.Error("even rank should be Undefined in odds")
			}
		}
		u, _ := p.GroupUnion(evens, odds)
		if p.GroupSize(u) != 6 {
			t.Error("union size")
		}
		i, _ := p.GroupIntersection(evens, odds)
		if p.GroupSize(i) != 0 {
			t.Error("intersection should be empty")
		}
		d, _ := p.GroupDifference(g, evens)
		if p.GroupSize(d) != 3 {
			t.Error("difference size")
		}
		tr, _ := p.GroupTranslateRanks(evens, []int{0, 1, 2}, g)
		if tr[0] != 0 || tr[1] != 2 || tr[2] != 4 {
			t.Errorf("translate = %v", tr)
		}
		p.GroupFree(evens)
		p.GroupFree(odds)
	})
}

func TestCommSplitType(t *testing.T) {
	run(t, 20, func(p *Proc) {
		node, err := p.CommSplitType(p.World(), CommTypeShared, p.Rank())
		if err != nil {
			t.Fatal(err)
		}
		want := 16
		if p.Rank() >= 16 {
			want = 4
		}
		if node.Size() != want {
			t.Errorf("rank %d node comm size %d, want %d", p.Rank(), node.Size(), want)
		}
	})
}

func TestCartTopology(t *testing.T) {
	run(t, 6, func(p *Proc) {
		w := p.World()
		cart, err := p.CartCreate(w, []int{2, 3}, []bool{false, true}, false)
		if err != nil {
			t.Fatal(err)
		}
		coords, err := p.CartCoords(cart, cart.Rank())
		if err != nil {
			t.Fatal(err)
		}
		if coords[0] != p.Rank()/3 || coords[1] != p.Rank()%3 {
			t.Errorf("rank %d coords %v", p.Rank(), coords)
		}
		if r, _ := p.CartRank(cart, coords); r != cart.Rank() {
			t.Errorf("CartRank inverse failed: %d", r)
		}
		// Dim 0 non-periodic: top row has no up neighbour.
		src, dest, err := p.CartShift(cart, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if coords[0] == 0 && src != ProcNull {
			t.Errorf("expected ProcNull up-source at top row, got %d", src)
		}
		if coords[0] == 1 && dest != ProcNull {
			t.Errorf("expected ProcNull down-dest at bottom row, got %d", dest)
		}
		// Dim 1 periodic: always has neighbours.
		src, dest, _ = p.CartShift(cart, 1, 1)
		if src == ProcNull || dest == ProcNull {
			t.Error("periodic dimension must wrap")
		}
		dims, periods, myCoords, _ := p.CartGet(cart)
		if dims[0] != 2 || dims[1] != 3 || periods[0] || !periods[1] || myCoords[0] != coords[0] {
			t.Error("CartGet mismatch")
		}
		if nd, _ := p.CartdimGet(cart); nd != 2 {
			t.Error("CartdimGet")
		}
		// Sub-communicators: keep dim 1 (rows).
		row, err := p.CartSub(cart, []bool{false, true})
		if err != nil {
			t.Fatal(err)
		}
		if row.Size() != 3 {
			t.Errorf("row size %d", row.Size())
		}
	})
}

func TestDimsCreate(t *testing.T) {
	run(t, 1, func(p *Proc) {
		dims := make([]int, 2)
		if err := p.DimsCreate(12, 2, dims); err != nil {
			t.Fatal(err)
		}
		if dims[0]*dims[1] != 12 || dims[0] < dims[1] {
			t.Errorf("dims = %v", dims)
		}
		dims3 := make([]int, 3)
		if err := p.DimsCreate(64, 3, dims3); err != nil {
			t.Fatal(err)
		}
		if dims3[0] != 4 || dims3[1] != 4 || dims3[2] != 4 {
			t.Errorf("dims3 = %v", dims3)
		}
		fixed := []int{0, 3}
		if err := p.DimsCreate(12, 2, fixed); err != nil {
			t.Fatal(err)
		}
		if fixed[0] != 4 || fixed[1] != 3 {
			t.Errorf("fixed dims = %v", fixed)
		}
	})
}

func TestDatatypes(t *testing.T) {
	run(t, 1, func(p *Proc) {
		contig, err := p.TypeContiguous(4, Int)
		if err != nil {
			t.Fatal(err)
		}
		// Using before commit must fail.
		buf := p.Alloc(64)
		if err := p.Send(buf.Ptr(0), 1, contig, ProcNull, 0, p.World()); err == nil {
			t.Error("uncommitted datatype should be rejected")
		}
		p.TypeCommit(contig)
		if p.TypeSize(contig) != 16 {
			t.Errorf("contig size = %d", p.TypeSize(contig))
		}
		if err := p.Send(buf.Ptr(0), 1, contig, ProcNull, 0, p.World()); err != nil {
			t.Error(err)
		}

		vec, _ := p.TypeVector(3, 2, 4, Int)
		p.TypeCommit(vec)
		if p.TypeSize(vec) != 24 {
			t.Errorf("vector size = %d", p.TypeSize(vec))
		}
		if _, ext := p.TypeGetExtent(vec); ext != ((3-1)*4+2)*4 {
			t.Errorf("vector extent = %d", ext)
		}

		idx, _ := p.TypeIndexed([]int{1, 3}, []int{0, 5}, Int)
		p.TypeCommit(idx)
		if p.TypeSize(idx) != 16 {
			t.Errorf("indexed size = %d", p.TypeSize(idx))
		}

		st, _ := p.TypeCreateStruct([]int{2, 1}, []int{0, 16}, []*Datatype{Int, Double})
		p.TypeCommit(st)
		if p.TypeSize(st) != 16 {
			t.Errorf("struct size = %d", p.TypeSize(st))
		}

		dup, _ := p.TypeDup(contig)
		if dup.Size() != contig.Size() {
			t.Error("dup size mismatch")
		}

		if err := p.TypeFree(vec); err != nil {
			t.Fatal(err)
		}
		if err := p.Send(buf.Ptr(0), 1, vec, ProcNull, 0, p.World()); err == nil {
			t.Error("freed datatype should be rejected")
		}
		if err := p.TypeFree(Int); err == nil {
			t.Error("freeing a predefined type should fail")
		}
	})
}

func TestSendWithDerivedType(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		contig, _ := p.TypeContiguous(3, Int)
		p.TypeCommit(contig)
		buf := p.Alloc(12)
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				putInt32(buf.Bytes()[i*4:], int32(i+7))
			}
			p.Send(buf.Ptr(0), 1, contig, 1, 0, w)
		} else {
			var st Status
			p.Recv(buf.Ptr(0), 1, contig, 0, 0, w, &st)
			if st.Count != 12 {
				t.Errorf("count = %d", st.Count)
			}
			if n := p.GetCount(st, contig); n != 1 {
				t.Errorf("GetCount = %d", n)
			}
			if n := p.GetElements(st, contig); n != 3 {
				t.Errorf("GetElements = %d", n)
			}
			for i := 0; i < 3; i++ {
				if getInt32(buf.Bytes()[i*4:]) != int32(i+7) {
					t.Error("derived type payload corrupted")
				}
			}
		}
	})
}

func TestUserDefinedOp(t *testing.T) {
	run(t, 3, func(p *Proc) {
		// op: dst = dst*10 + src (non-commutative, order-sensitive).
		op, err := p.OpCreate(func(dst, src []byte, dt *Datatype) {
			a := getInt32(dst)
			b := getInt32(src)
			putInt32(dst, a*10+b)
		}, false)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Alloc(4)
		r := p.Alloc(4)
		putInt32(s.Bytes(), int32(p.Rank()+1))
		if err := p.Allreduce(s.Ptr(0), r.Ptr(0), 1, Int, op, p.World()); err != nil {
			t.Fatal(err)
		}
		// Folded in rank order: ((1*10)+2)*10+3 = 123.
		if got := getInt32(r.Bytes()); got != 123 {
			t.Errorf("user op result = %d", got)
		}
		p.OpFree(op)
	})
}

func TestOOBAllreduce(t *testing.T) {
	run(t, 5, func(p *Proc) {
		got := p.AllreduceMaxInt32(p.World().Handle(), int32(p.Rank()*3))
		if got != 12 {
			t.Errorf("OOB max = %d", got)
		}
		// Non-blocking variant.
		tok := p.IAllreduceMaxInt32(p.World().Handle(), int32(100-p.Rank()))
		for {
			done, v := p.PollOOB(tok)
			if done {
				if v != 100 {
					t.Errorf("OOB async max = %d", v)
				}
				break
			}
			yield()
		}
	})
}

func TestOOBOnIntercommSpansBothGroups(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		half, _ := p.CommSplit(w, p.Rank()/2, p.Rank())
		remoteLeader := 2
		if p.Rank() >= 2 {
			remoteLeader = 0
		}
		inter, err := p.IntercommCreate(half, 0, w, remoteLeader, 5)
		if err != nil {
			t.Fatal(err)
		}
		got := p.AllreduceMaxInt32(inter.Handle(), int32(p.Rank()))
		if got != 3 {
			t.Errorf("OOB over intercomm = %d, want 3 (max world rank)", got)
		}
	})
}

func TestEnvCalls(t *testing.T) {
	run(t, 2, func(p *Proc) {
		if p.Initialized() {
			t.Error("initialized before Init")
		}
		p.Init()
		if !p.Initialized() {
			t.Error("Initialized() false after Init")
		}
		if n := p.CommSize(p.World()); n != 2 {
			t.Errorf("CommSize = %d", n)
		}
		if r := p.CommRank(p.World()); r != p.Rank() {
			t.Errorf("CommRank = %d", r)
		}
		if name := p.GetProcessorName(); name == "" {
			t.Error("empty processor name")
		}
		p.Finalize()
		if !p.Finalized() {
			t.Error("Finalized() false after Finalize")
		}
	})
}
