package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Fault injection: a FaultPlan attached to Options deterministically
// perturbs a run — crash a rank at its Nth MPI call, delay or drop a
// point-to-point message, or fail a collective. Faults trigger on the
// per-rank MPI call counter (and, optionally, a probability sampled
// from the rank's own RNG), so two runs with the same seed and plan
// observe identical failures. This is the substrate for testing the
// crash-consistent trace salvage path and the deadlock diagnoser.

// FaultKind selects what an injected fault does.
type FaultKind int

const (
	// FaultCrash kills the rank at the triggering call, as if the
	// process died: everything it already posted (sends, collective
	// arrivals) stays visible, nothing after does. Other ranks keep
	// running until they finish or block on the dead rank; the idle
	// detector then halts the job promptly with a diagnosis, which
	// keeps the surviving ranks' call streams deterministic.
	FaultCrash FaultKind = iota
	// FaultDelayMsg adds Delay virtual nanoseconds to the next
	// point-to-point message the rank sends at or after the
	// triggering call.
	FaultDelayMsg
	// FaultDropMsg silently discards the next point-to-point message
	// the rank sends at or after the triggering call. Receivers (and
	// synchronous senders) waiting on it block and are diagnosed by
	// the deadlock detector.
	FaultDropMsg
	// FaultCollFail makes the rank refuse the triggering collective:
	// it dies at the call without arriving at the rendezvous, so the
	// remaining members block and the failure is diagnosed.
	FaultCollFail
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDelayMsg:
		return "delay-msg"
	case FaultDropMsg:
		return "drop-msg"
	case FaultCollFail:
		return "coll-fail"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one injected failure.
type Fault struct {
	Kind FaultKind
	// Rank is the world rank the fault applies to.
	Rank int
	// AtCall triggers the fault at the rank's Nth MPI call (1-based).
	// Zero means "any call", gated by Probability.
	AtCall int64
	// Probability, when AtCall is zero, samples the fault once per
	// call from the rank's deterministic RNG. Ignored otherwise.
	Probability float64
	// Delay is the virtual-nanosecond delay for FaultDelayMsg.
	Delay int64
}

// FaultPlan is the set of faults for one run.
type FaultPlan struct {
	Faults []Fault
}

// faultState is the per-rank view of the plan (rank goroutine only).
type faultState struct {
	faults []Fault // this rank's faults
	fired  []bool
}

func newFaultState(plan *FaultPlan, rank int) *faultState {
	if plan == nil {
		return nil
	}
	var mine []Fault
	for _, f := range plan.Faults {
		if f.Rank == rank {
			mine = append(mine, f)
		}
	}
	if len(mine) == 0 {
		return nil
	}
	return &faultState{faults: mine, fired: make([]bool, len(mine))}
}

// checkFaults runs at every MPI call entry on the rank goroutine.
// call is the 1-based index of the call being attempted. Crash-style
// faults panic with a typed value the runner recognizes; message
// faults arm the proc's pending-delay/drop state consumed by the next
// posted envelope.
func (p *Proc) checkFaults(call int64) {
	fs := p.faults
	if fs == nil {
		return
	}
	for i := range fs.faults {
		f := &fs.faults[i]
		if fs.fired[i] {
			continue
		}
		if f.AtCall > 0 {
			if call != f.AtCall {
				continue
			}
		} else if f.Probability <= 0 || p.rng.Float64() >= f.Probability {
			continue
		}
		fs.fired[i] = true
		if m := p.world.metrics; m != nil {
			m.noteFault(f.Kind)
		}
		switch f.Kind {
		case FaultCrash:
			panic(&CrashError{Rank: p.rank, Call: call, Injected: true})
		case FaultCollFail:
			panic(&CrashError{Rank: p.rank, Call: call, Injected: true, Collective: true})
		case FaultDelayMsg:
			p.msgDelay += f.Delay
		case FaultDropMsg:
			p.msgDrop++
		}
	}
}

// applySendFaults consumes any armed message fault for the envelope
// about to be posted. It reports whether the envelope should actually
// be delivered (false = dropped).
func (p *Proc) applySendFaults(e *envelope) bool {
	if p.msgDrop > 0 {
		p.msgDrop--
		return false
	}
	if p.msgDelay > 0 {
		e.sentAt += p.msgDelay
		p.msgDelay = 0
	}
	return true
}

// postEnvelope routes an envelope through the fault layer to the
// destination mailbox. All send paths go through here.
func (p *Proc) postEnvelope(ctx int64, destWorld int, e *envelope) {
	if !p.applySendFaults(e) {
		// Dropped: a synchronous sender still waits on e.sreq, and the
		// receiver never matches; both show up in the deadlock report.
		return
	}
	if m := p.world.metrics; m != nil {
		m.noteSend(p.rank, len(e.data))
	}
	p.world.postSend(ctx, destWorld, e)
}

// --- Typed failure errors ----------------------------------------------------

// ErrRevoked marks operations aborted because the job failed on
// another rank (in the spirit of ULFM's MPI_ERR_REVOKED): when a rank
// crashes, aborts, or a deadlock is diagnosed, every other blocked
// rank unwinds with an error wrapping ErrRevoked instead of hanging.
var ErrRevoked = errors.New("mpi: operation revoked (job failure on another rank)")

// CrashError reports an injected rank crash (FaultCrash/FaultCollFail).
type CrashError struct {
	Rank       int
	Call       int64 // 1-based index of the call the rank died at
	Injected   bool
	Collective bool
}

func (e *CrashError) Error() string {
	what := "crashed"
	if e.Collective {
		what = "failed a collective"
	}
	inj := ""
	if e.Injected {
		inj = " (injected fault)"
	}
	return fmt.Sprintf("mpi: rank %d %s at MPI call %d%s", e.Rank, what, e.Call, inj)
}

// AbortError reports an MPI_Abort.
type AbortError struct {
	Rank int
	Code int
	Comm string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("mpi: MPI_Abort(comm=%s, errorcode=%d) on rank %d", e.Comm, e.Code, e.Rank)
}

// PanicError reports a panic escaping a rank body.
type PanicError struct {
	Rank  int
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v\n%s", e.Rank, e.Value, e.Stack)
}

// jobRevoked is the panic value blocking operations raise when the
// world has been revoked; the runner converts it into an
// ErrRevoked-wrapped rank error, and background helper goroutines
// swallow it.
type jobRevoked struct{}

// RunError is the aggregate failure of a run: the precipitating cause
// plus every rank's individual error (crashes, aborts, panics, and the
// ErrRevoked unwinds of ranks that were blocked when the job halted).
type RunError struct {
	// Cause is the failure that halted the job: a *CrashError,
	// *AbortError, *PanicError, or *DeadlockError. May equal one of
	// the per-rank errors.
	Cause error
	// Ranks maps world rank to that rank's error (ranks that returned
	// cleanly are absent).
	Ranks map[int]error
	// Abandoned counts rank goroutines that still had not unwound
	// when the bounded post-failure grace period expired.
	Abandoned int
}

// Error formats the cause followed by each rank's error.
func (e *RunError) Error() string {
	var b strings.Builder
	if e.Cause != nil {
		b.WriteString(e.Cause.Error())
	} else {
		b.WriteString("mpi: run failed")
	}
	for _, r := range e.FailedRanks() {
		err := e.Ranks[r]
		if err == e.Cause {
			continue
		}
		b.WriteString("\n")
		b.WriteString(err.Error())
	}
	if e.Abandoned > 0 {
		fmt.Fprintf(&b, "\n%d rank goroutine(s) abandoned after grace period", e.Abandoned)
	}
	return b.String()
}

// Unwrap exposes the cause and every rank error, so errors.Is/As see
// all of them (the errors.Join contract).
func (e *RunError) Unwrap() []error {
	out := make([]error, 0, len(e.Ranks)+1)
	if e.Cause != nil {
		out = append(out, e.Cause)
	}
	for _, r := range e.FailedRanks() {
		if e.Ranks[r] != e.Cause {
			out = append(out, e.Ranks[r])
		}
	}
	return out
}

// FailedRanks returns the ranks with errors, sorted.
func (e *RunError) FailedRanks() []int {
	out := make([]int, 0, len(e.Ranks))
	for r := range e.Ranks {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// FailedRanks extracts the per-rank failure map from an error returned
// by Run/RunOpt (nil if err is not a *RunError). Trace-salvage callers
// use it to tag which ranks' streams are truncated.
func FailedRanks(err error) map[int]error {
	var re *RunError
	if errors.As(err, &re) {
		return re.Ranks
	}
	return nil
}
