package mpi

import (
	"encoding/binary"
	"testing"
	"time"
)

func run(t *testing.T, n int, body func(p *Proc)) {
	t.Helper()
	if err := RunOpt(n, Options{Timeout: 30 * time.Second}, body); err != nil {
		t.Fatal(err)
	}
}

func putInt32(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) }
func getInt32(b []byte) int32    { return int32(binary.LittleEndian.Uint32(b)) }

func TestSendRecvBasic(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		defer buf.Free()
		if p.Rank() == 0 {
			putInt32(buf.Bytes(), 42)
			if err := p.Send(buf.Ptr(0), 1, Int, 1, 7, w); err != nil {
				t.Error(err)
			}
		} else {
			var st Status
			if err := p.Recv(buf.Ptr(0), 1, Int, 0, 7, w, &st); err != nil {
				t.Error(err)
			}
			if got := getInt32(buf.Bytes()); got != 42 {
				t.Errorf("received %d, want 42", got)
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != 4 {
				t.Errorf("bad status %+v", st)
			}
		}
	})
}

func TestRecvBeforeSend(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(8)
		if p.Rank() == 1 {
			var st Status
			if err := p.Recv(buf.Ptr(0), 2, Int, 0, 3, w, &st); err != nil {
				t.Error(err)
			}
			if getInt32(buf.Bytes()) != 5 || getInt32(buf.Bytes()[4:]) != 6 {
				t.Error("payload corrupted")
			}
		} else {
			time.Sleep(10 * time.Millisecond) // ensure recv posts first
			putInt32(buf.Bytes(), 5)
			putInt32(buf.Bytes()[4:], 6)
			p.Send(buf.Ptr(0), 2, Int, 1, 3, w)
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 3, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		switch p.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				var st Status
				if err := p.Recv(buf.Ptr(0), 1, Int, AnySource, AnyTag, w, &st); err != nil {
					t.Error(err)
				}
				if int64(st.Tag) != int64(100+st.Source) {
					t.Errorf("tag %d does not match source %d", st.Tag, st.Source)
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen: %v", seen)
			}
		default:
			putInt32(buf.Bytes(), int32(p.Rank()))
			p.Send(buf.Ptr(0), 1, Int, 0, 100+p.Rank(), w)
		}
	})
}

func TestNonOvertaking(t *testing.T) {
	// Messages from the same sender with the same tag must arrive in
	// send order.
	const n = 50
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				putInt32(buf.Bytes(), int32(i))
				p.Send(buf.Ptr(0), 1, Int, 1, 0, w)
			}
		} else {
			for i := 0; i < n; i++ {
				p.Recv(buf.Ptr(0), 1, Int, 0, 0, w, nil)
				if got := getInt32(buf.Bytes()); got != int32(i) {
					t.Fatalf("message %d arrived out of order (got %d)", i, got)
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			putInt32(buf.Bytes(), 1)
			p.Send(buf.Ptr(0), 1, Int, 1, 10, w)
			putInt32(buf.Bytes(), 2)
			p.Send(buf.Ptr(0), 1, Int, 1, 20, w)
		} else {
			// Receive tag 20 first even though tag 10 arrived first.
			p.Recv(buf.Ptr(0), 1, Int, 0, 20, w, nil)
			if getInt32(buf.Bytes()) != 2 {
				t.Error("tag 20 should carry value 2")
			}
			p.Recv(buf.Ptr(0), 1, Int, 0, 10, w, nil)
			if getInt32(buf.Bytes()) != 1 {
				t.Error("tag 10 should carry value 1")
			}
		}
	})
}

func TestProcNull(t *testing.T) {
	run(t, 1, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if err := p.Send(buf.Ptr(0), 1, Int, ProcNull, 0, w); err != nil {
			t.Error(err)
		}
		var st Status
		if err := p.Recv(buf.Ptr(0), 1, Int, ProcNull, 0, w, &st); err != nil {
			t.Error(err)
		}
		if st.Source != ProcNull || st.Count != 0 {
			t.Errorf("PROC_NULL recv status %+v", st)
		}
		req, err := p.Isend(buf.Ptr(0), 1, Int, ProcNull, 0, w)
		if err != nil {
			t.Error(err)
		}
		p.Wait(req, nil)
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		sendBuf := p.Alloc(40)
		recvBuf := p.Alloc(40)
		other := 1 - p.Rank()
		for i := 0; i < 10; i++ {
			putInt32(sendBuf.Bytes()[i*4:], int32(p.Rank()*100+i))
		}
		var reqs []*Request
		for i := 0; i < 10; i++ {
			r, err := p.Irecv(recvBuf.Ptr(i*4), 1, Int, other, i, w)
			if err != nil {
				t.Error(err)
			}
			reqs = append(reqs, r)
		}
		for i := 0; i < 10; i++ {
			r, err := p.Isend(sendBuf.Ptr(i*4), 1, Int, other, i, w)
			if err != nil {
				t.Error(err)
			}
			reqs = append(reqs, r)
		}
		if err := p.Waitall(reqs, make([]Status, len(reqs))); err != nil {
			t.Error(err)
		}
		for i := 0; i < 10; i++ {
			if got := getInt32(recvBuf.Bytes()[i*4:]); got != int32(other*100+i) {
				t.Errorf("slot %d: got %d", i, got)
			}
		}
	})
}

func TestWaitany(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(12)
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				putInt32(buf.Bytes()[i*4:], int32(i))
				p.Send(buf.Ptr(i*4), 1, Int, 1, i, w)
			}
		} else {
			reqs := make([]*Request, 3)
			for i := range reqs {
				reqs[i], _ = p.Irecv(buf.Ptr(i*4), 1, Int, 0, i, w)
			}
			seen := map[int]bool{}
			for range reqs {
				idx, err := p.Waitany(reqs, nil)
				if err != nil || idx < 0 {
					t.Fatalf("Waitany: %d %v", idx, err)
				}
				if seen[idx] {
					t.Fatalf("Waitany returned index %d twice", idx)
				}
				seen[idx] = true
				reqs[idx] = nil
			}
			// All requests done: Waitany over nils returns Undefined.
			if idx, _ := p.Waitany(reqs, nil); idx != Undefined {
				t.Errorf("Waitany over consumed requests = %d", idx)
			}
		}
	})
}

func TestTestsomeLoop(t *testing.T) {
	// The paper's §1 example: loop over Testsome until all complete.
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(40)
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				putInt32(buf.Bytes()[i*4:], int32(i))
				p.Send(buf.Ptr(i*4), 1, Int, 1, i, w)
			}
		} else {
			reqs := make([]*Request, 10)
			for i := range reqs {
				reqs[i], _ = p.Irecv(buf.Ptr(i*4), 1, Int, 0, i, w)
			}
			doneCount := 0
			for doneCount < 10 {
				idx, err := p.Testsome(reqs, make([]Status, 10))
				if err != nil {
					t.Fatal(err)
				}
				for _, i := range idx {
					reqs[i] = nil
					doneCount++
				}
				yield()
			}
		}
	})
}

func TestTestFlagTransitions(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			p.Send(buf.Ptr(0), 1, Int, 1, 0, w)
		} else {
			req, _ := p.Irecv(buf.Ptr(0), 1, Int, 0, 0, w)
			// Initially incomplete (sender sleeps).
			if ok, _ := p.Test(req, nil); ok {
				t.Log("completed surprisingly early; acceptable but unusual")
			}
			for {
				ok, err := p.Test(req, nil)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					break
				}
				yield()
			}
		}
	})
}

func TestSsendBlocksUntilMatched(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		if p.Rank() == 0 {
			start := time.Now()
			if err := p.Ssend(buf.Ptr(0), 1, Int, 1, 0, w); err != nil {
				t.Error(err)
			}
			if time.Since(start) < 20*time.Millisecond {
				t.Error("Ssend returned before receiver posted")
			}
		} else {
			time.Sleep(30 * time.Millisecond)
			p.Recv(buf.Ptr(0), 1, Int, 0, 0, w, nil)
		}
	})
}

func TestSendrecv(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		n := p.Size()
		sbuf := p.Alloc(4)
		rbuf := p.Alloc(4)
		putInt32(sbuf.Bytes(), int32(p.Rank()))
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		var st Status
		if err := p.Sendrecv(sbuf.Ptr(0), 1, Int, right, 0,
			rbuf.Ptr(0), 1, Int, left, 0, w, &st); err != nil {
			t.Error(err)
		}
		if got := getInt32(rbuf.Bytes()); got != int32(left) {
			t.Errorf("rank %d received %d from left, want %d", p.Rank(), got, left)
		}
	})
}

func TestSendrecvReplace(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		putInt32(buf.Bytes(), int32(p.Rank()+10))
		other := 1 - p.Rank()
		if err := p.SendrecvReplace(buf.Ptr(0), 1, Int, other, 5, other, 5, w, nil); err != nil {
			t.Error(err)
		}
		if got := getInt32(buf.Bytes()); got != int32(other+10) {
			t.Errorf("rank %d got %d", p.Rank(), got)
		}
	})
}

func TestProbeAndIprobe(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(16)
		if p.Rank() == 0 {
			p.Send(buf.Ptr(0), 4, Int, 1, 9, w)
		} else {
			var st Status
			if err := p.Probe(0, 9, w, &st); err != nil {
				t.Fatal(err)
			}
			if st.Count != 16 || st.Source != 0 || st.Tag != 9 {
				t.Errorf("probe status %+v", st)
			}
			// Iprobe must also see it (message still pending).
			found, _ := p.Iprobe(AnySource, AnyTag, w, nil)
			if !found {
				t.Error("Iprobe missed pending message")
			}
			p.Recv(buf.Ptr(0), 4, Int, 0, 9, w, nil)
			found, _ = p.Iprobe(AnySource, AnyTag, w, nil)
			if found {
				t.Error("Iprobe found message after receive")
			}
		}
	})
}

func TestPersistentRequests(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		other := 1 - p.Rank()
		var req *Request
		var err error
		if p.Rank() == 0 {
			req, err = p.SendInit(buf.Ptr(0), 1, Int, other, 0, w)
		} else {
			req, err = p.RecvInit(buf.Ptr(0), 1, Int, other, 0, w)
		}
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 5; iter++ {
			if p.Rank() == 0 {
				putInt32(buf.Bytes(), int32(iter*3))
			}
			if err := p.Start(req); err != nil {
				t.Fatal(err)
			}
			if err := p.Wait(req, nil); err != nil {
				t.Fatal(err)
			}
			if p.Rank() == 1 {
				if got := getInt32(buf.Bytes()); got != int32(iter*3) {
					t.Errorf("iter %d: got %d", iter, got)
				}
			}
		}
		p.RequestFree(req)
	})
}

func TestCancelRecv(t *testing.T) {
	run(t, 1, func(p *Proc) {
		w := p.World()
		buf := p.Alloc(4)
		req, _ := p.Irecv(buf.Ptr(0), 1, Int, 0, 99, w)
		if err := p.Cancel(req); err != nil {
			t.Fatal(err)
		}
		var st Status
		p.Wait(req, &st)
		if !st.Cancelled {
			t.Error("cancelled receive should report Cancelled")
		}
	})
}

func TestInterceptionOrderAndTimestamps(t *testing.T) {
	type call struct {
		fn   string
		pre  bool
		tsOK bool
	}
	recorder := &recordingInterceptor{}
	err := RunOpt(1, Options{Interceptors: []Interceptor{recorder}, Timeout: 10 * time.Second}, func(p *Proc) {
		p.Init()
		buf := p.Alloc(4)
		p.Send(buf.Ptr(0), 1, Int, ProcNull, 0, p.World())
		buf.Free()
		p.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFns := []string{"MPI_Init", "MPI_Send", "MPI_Finalize"}
	if len(recorder.calls) != len(wantFns) {
		t.Fatalf("captured %d calls, want %d", len(recorder.calls), len(wantFns))
	}
	for i, rec := range recorder.calls {
		if rec.Func.Name() != wantFns[i] {
			t.Errorf("call %d = %s, want %s", i, rec.Func.Name(), wantFns[i])
		}
		if rec.TEnd < rec.TStart {
			t.Errorf("call %d: TEnd %d < TStart %d", i, rec.TEnd, rec.TStart)
		}
	}
	if recorder.allocs != 1 || recorder.frees != 1 {
		t.Errorf("mem hooks: %d allocs, %d frees", recorder.allocs, recorder.frees)
	}
	_ = call{}
}

type recordingInterceptor struct {
	calls  []CallRecord
	allocs int
	frees  int
}

func (r *recordingInterceptor) Pre(rec *CallRecord)                      {}
func (r *recordingInterceptor) Post(rec *CallRecord)                     { r.calls = append(r.calls, *rec) }
func (r *recordingInterceptor) MemAlloc(addr, size uint64, device int32) { r.allocs++ }
func (r *recordingInterceptor) MemFree(addr uint64)                      { r.frees++ }

func TestRunPanicPropagates(t *testing.T) {
	err := RunOpt(2, Options{Timeout: 5 * time.Second}, func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		t0 := p.Now()
		p.Compute(1000)
		if p.Now() < t0+1000 {
			t.Error("Compute did not advance clock")
		}
		buf := p.Alloc(1024)
		if p.Rank() == 0 {
			p.Send(buf.Ptr(0), 1024, Byte, 1, 0, w)
		} else {
			p.Recv(buf.Ptr(0), 1024, Byte, 0, 0, w, nil)
			if p.Now() <= t0+1000 {
				t.Error("receive did not advance clock past transfer cost")
			}
		}
	})
}
