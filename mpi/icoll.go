package mpi

// Non-blocking collectives: the call is traced immediately (with its
// request), and the collective body runs on a background goroutine
// that completes the request. The background rendezvous uses the
// sequence number drawn at call time, so call order defines matching
// exactly as MPI requires.

// Ibarrier starts a non-blocking barrier.
func (p *Proc) Ibarrier(c *Comm) (*Request, error) {
	if err := p.checkColl(c); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vComm(c), vReq(req)}
	p.icall(fIbarrier, args, func() {
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		p.goBackground(func() {
			_, maxClk := p.world.rendezvous(key, len(c.group), c.myRank, clk, nil, nil)
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}

// Ibcast starts a non-blocking broadcast.
func (p *Proc) Ibcast(buf Ptr, count int, dt *Datatype, root int, c *Comm) (*Request, error) {
	if err := p.checkColl(c, dt); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(buf), vInt(count), vType(dt), vRank(root), vComm(c), vReq(req)}
	p.icall(fIbcast, args, func() {
		nbytes := count * dt.size
		var contrib any
		if c.myRank == root {
			contrib = snapshot(buf, nbytes)
		}
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		me := c.myRank
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), me, clk, contrib,
				func(m map[int]any) any { return m[root] })
			if me != root {
				if data, ok := res.([]byte); ok {
					copy(buf.data, data)
				}
			}
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group)))+int64(nbytes)/10)
		})
	})
	return req, nil
}

// Igather starts a non-blocking gather.
func (p *Proc) Igather(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, root int, c *Comm) (*Request, error) {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vRank(root), vComm(c), vReq(req)}
	p.icall(fIgather, args, func() {
		nbytes := sendcount * sendtype.size
		contrib := snapshot(sendbuf, nbytes)
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		me := c.myRank
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), me, clk, contrib, concatCompute(len(c.group)))
			if me == root {
				copy(recvbuf.data, res.([]byte))
			}
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}

// Iscatter starts a non-blocking scatter.
func (p *Proc) Iscatter(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, root int, c *Comm) (*Request, error) {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vRank(root), vComm(c), vReq(req)}
	p.icall(fIscatter, args, func() {
		blockBytes := sendcount * sendtype.size
		var contrib any
		if c.myRank == root {
			contrib = snapshot(sendbuf, blockBytes*len(c.group))
		}
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		me := c.myRank
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), me, clk, contrib,
				func(m map[int]any) any { return m[root] })
			if data, ok := res.([]byte); ok {
				off := me * blockBytes
				if off+blockBytes <= len(data) {
					copy(recvbuf.data, data[off:off+blockBytes])
				}
			}
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}

// Iallgather starts a non-blocking allgather.
func (p *Proc) Iallgather(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, c *Comm) (*Request, error) {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vComm(c), vReq(req)}
	p.icall(fIallgather, args, func() {
		nbytes := sendcount * sendtype.size
		contrib := snapshot(sendbuf, nbytes)
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), c.myRank, clk, contrib, concatCompute(len(c.group)))
			copy(recvbuf.data, res.([]byte))
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}

// Ialltoall starts a non-blocking all-to-all.
func (p *Proc) Ialltoall(sendbuf Ptr, sendcount int, sendtype *Datatype,
	recvbuf Ptr, recvcount int, recvtype *Datatype, c *Comm) (*Request, error) {
	if err := p.checkColl(c, sendtype, recvtype); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(sendbuf), vInt(sendcount), vType(sendtype),
		vPtr(recvbuf), vInt(recvcount), vType(recvtype), vComm(c), vReq(req)}
	p.icall(fIalltoall, args, func() {
		blockBytes := sendcount * sendtype.size
		contrib := snapshot(sendbuf, blockBytes*len(c.group))
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		me := c.myRank
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), me, clk, contrib, identityCompute)
			m := res.(map[int]any)
			for i := 0; i < len(c.group); i++ {
				data, _ := m[i].([]byte)
				srcOff := me * blockBytes
				dstOff := i * blockBytes
				if srcOff+blockBytes <= len(data) && dstOff+blockBytes <= len(recvbuf.data) {
					copy(recvbuf.data[dstOff:dstOff+blockBytes], data[srcOff:srcOff+blockBytes])
				}
			}
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}

// Ireduce starts a non-blocking reduce.
func (p *Proc) Ireduce(sendbuf, recvbuf Ptr, count int, dt *Datatype, op *Op, root int, c *Comm) (*Request, error) {
	if err := p.checkColl(c, dt); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(count), vType(dt), vOp(op), vRank(root), vComm(c), vReq(req)}
	p.icall(fIreduce, args, func() {
		nbytes := count * dt.size
		contrib := snapshot(sendbuf, nbytes)
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		me := c.myRank
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), me, clk, contrib, reduceCompute(op, dt, len(c.group)))
			if me == root {
				copy(recvbuf.data, res.([]byte))
			}
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}

// Iallreduce starts a non-blocking allreduce.
func (p *Proc) Iallreduce(sendbuf, recvbuf Ptr, count int, dt *Datatype, op *Op, c *Comm) (*Request, error) {
	if err := p.checkColl(c, dt); err != nil {
		return nil, err
	}
	req := p.newRequest(rkColl)
	args := []Value{vPtr(sendbuf), vPtr(recvbuf), vInt(count), vType(dt), vOp(op), vComm(c), vReq(req)}
	p.icall(fIallreduce, args, func() {
		nbytes := count * dt.size
		contrib := snapshot(sendbuf, nbytes)
		seq := c.seq.Add(1)
		key := collKey{ctx: c.ctx, seq: seq}
		req.target = collTarget(p.world, key, c.group, p.rank, c.name)
		clk := p.clock.Load()
		p.goBackground(func() {
			res, maxClk := p.world.rendezvous(key, len(c.group), c.myRank, clk, contrib, reduceCompute(op, dt, len(c.group)))
			copy(recvbuf.data, res.([]byte))
			req.complete(Status{}, maxClk+costLatency*int64(log2ceil(len(c.group))))
		})
	})
	return req, nil
}
