package pilgrim_test

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// TestRunSimThroughCollector drives the full networked path: RunSim
// with Options.CollectorAddr streams every rank's snapshot to a live
// collector, the merge happens server-side, and the fetched trace is
// a complete, decodable artifact also persisted under the collector's
// out-dir.
func TestRunSimThroughCollector(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	srv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body, err := workloads.Get("stencil2d", 3, n)
	if err != nil {
		t.Fatal(err)
	}
	opts := pilgrim.Options{CollectorAddr: srv.Addr(), CollectorRunID: "e2e"}
	file, stats, err := pilgrim.RunSim(n, opts, mpi.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	if file.NumRanks != n || stats.TotalCalls == 0 {
		t.Fatalf("trace: %d ranks, %d calls", file.NumRanks, stats.TotalCalls)
	}
	for r := 0; r < n; r++ {
		if _, err := pilgrim.DecodeRank(file, r); err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
	}
	// The remote path really ran: the collector finalized the run and
	// wrote the trace file.
	if srv.Metrics().FinalizedRuns.Load() != 1 {
		t.Fatal("collector did not finalize the run (local fallback used?)")
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "e2e.pilgrim"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != stats.TraceBytes {
		t.Fatalf("on-disk trace %d bytes, stats say %d", len(onDisk), stats.TraceBytes)
	}
}

// TestRunSimReusedRunID runs two different workloads under the same
// CollectorRunID: each run must finalize at the collector with its own
// trace. RunSim derives a fresh epoch per run, so the second run
// restarts the registry entry — without that, every snapshot of the
// second run would ack as a duplicate of the first and WaitTrace would
// silently hand back the first run's trace.
func TestRunSimReusedRunID(t *testing.T) {
	const n = 4
	srv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	opts := pilgrim.Options{CollectorAddr: srv.Addr(), CollectorRunID: "reused"}

	small, err := workloads.Get("stencil2d", 2, n)
	if err != nil {
		t.Fatal(err)
	}
	file1, _, err := pilgrim.RunSim(n, opts, mpi.Options{}, small)
	if err != nil {
		t.Fatal(err)
	}
	big, err := workloads.Get("stencil2d", 5, n)
	if err != nil {
		t.Fatal(err)
	}
	file2, _, err := pilgrim.RunSim(n, opts, mpi.Options{}, big)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().FinalizedRuns.Load(); got != 2 {
		t.Fatalf("collector finalized %d runs, want 2 (second run served stale trace?)", got)
	}
	calls1, err := pilgrim.DecodeRank(file1, 0)
	if err != nil {
		t.Fatal(err)
	}
	calls2, err := pilgrim.DecodeRank(file2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls2) <= len(calls1) {
		t.Fatalf("second trace decodes %d calls on rank 0, first %d — got the first run's trace back",
			len(calls2), len(calls1))
	}
}

// TestRunSimCollectorDown points RunSim at a dead address: the client
// exhausts its retries and RunSim falls back to the local merge, so
// the run still succeeds with a full trace.
func TestRunSimCollectorDown(t *testing.T) {
	const n = 4
	body, err := workloads.Get("stencil2d", 2, n)
	if err != nil {
		t.Fatal(err)
	}
	// A listener we close immediately: the port is real but dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	file, stats, err := pilgrim.RunSim(n, pilgrim.Options{CollectorAddr: addr}, mpi.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	if file == nil || file.NumRanks != n || stats.TotalCalls == 0 {
		t.Fatalf("fallback trace incomplete: %+v", stats)
	}
	for r := 0; r < n; r++ {
		if _, err := pilgrim.DecodeRank(file, r); err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
	}
}

// TestRunSimCollectorKilledMidRun kills the collector while producers
// are mid-conversation — connections accept and then reset — and the
// run must still finish via the local fallback.
func TestRunSimCollectorKilledMidRun(t *testing.T) {
	const n = 4
	body, err := workloads.Get("stencil2d", 2, n)
	if err != nil {
		t.Fatal(err)
	}
	// A "dying collector": accepts each connection, then severs it
	// before any ack — what producers observe when the daemon is killed
	// between connect and reply.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	file, stats, err := pilgrim.RunSim(n, pilgrim.Options{CollectorAddr: ln.Addr().String()}, mpi.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	if file == nil || file.NumRanks != n || stats.TotalCalls == 0 {
		t.Fatalf("fallback trace incomplete: %+v", stats)
	}
}

// TestRunSimFallsBackOnAdmissionNack fills the collector's run budget
// and points RunSim at it: every rank's send is refused with a typed
// over-limit NACK — a permanent error, so clients stop after one
// attempt instead of burning their retry budget — and the run still
// completes via the local finalize, producing a full trace.
func TestRunSimFallsBackOnAdmissionNack(t *testing.T) {
	const n = 4
	srv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Occupy the only run slot with a half-reported run that never
	// finalizes (no straggler deadline configured).
	occ := traceSnapshots(t, 2)
	hold := &collect.Client{
		Addr:  srv.Addr(),
		Run:   collect.RunInfo{RunID: "occupier", WorldSize: 2},
		Retry: collect.RetryPolicy{Seed: 1},
	}
	if err := hold.SendSnapshot(occ[0]); err != nil {
		t.Fatal(err)
	}

	body, err := workloads.Get("stencil2d", 2, n)
	if err != nil {
		t.Fatal(err)
	}
	opts := pilgrim.Options{CollectorAddr: srv.Addr(), CollectorRunID: "shed"}
	file, stats, err := pilgrim.RunSim(n, opts, mpi.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	if file == nil || file.NumRanks != n || stats.TotalCalls == 0 {
		t.Fatalf("fallback trace incomplete: %+v", stats)
	}
	for r := 0; r < n; r++ {
		if _, err := pilgrim.DecodeRank(file, r); err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
	}
	// The shed run never finalized server-side; the occupier is intact.
	if got := srv.Metrics().FinalizedRuns.Load(); got != 0 {
		t.Fatalf("collector finalized %d runs, want 0", got)
	}
	if srv.Metrics().AdmissionRejectedRuns.Load() == 0 {
		t.Fatal("no admission rejections recorded")
	}
	st, ok := srv.Run("occupier")
	if !ok || st.State != "collecting" || st.Received != 1 {
		t.Fatalf("occupier run disturbed by shed load: %+v", st)
	}
}

// traceSnapshots runs a small workload under per-rank tracers and
// returns the snapshots — raw material for driving a collector by hand.
func traceSnapshots(t *testing.T, n int) []*core.Snapshot {
	t.Helper()
	tracers := make([]*core.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := 0; i < n; i++ {
		tracers[i] = core.NewTracer(i, nil, core.Options{})
		ics[i] = tracers[i]
	}
	body, err := workloads.Get("stencil2d", 2, n)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.RunOpt(n, mpi.Options{Interceptors: ics}, func(p *mpi.Proc) {
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]*core.Snapshot, n)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	return snaps
}
