package pilgrim_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/trace"
	"github.com/hpcrepro/pilgrim/mpi"
)

func simOpts() mpi.Options { return mpi.Options{Timeout: 60 * time.Second} }

// ring is a small SPMD body: each rank sends to its right neighbour
// and receives from the left, in a loop, then allreduces.
func ring(iters int) func(p *mpi.Proc) {
	return func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		n := p.Size()
		buf := p.Alloc(8)
		out := p.Alloc(8)
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		for i := 0; i < iters; i++ {
			p.Compute(5000)
			p.Sendrecv(buf.Ptr(0), 1, mpi.Double, right, 7,
				out.Ptr(0), 1, mpi.Double, left, 7, w, nil)
			p.Allreduce(buf.Ptr(0), out.Ptr(0), 1, mpi.Double, mpi.OpSum, w)
		}
		buf.Free()
		out.Free()
		p.Finalize()
	}
}

func TestRunRingLossless(t *testing.T) {
	const n = 6
	tracers := make([]*pilgrim.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil, pilgrim.Options{Verify: true})
		ics[i] = tracers[i]
	}
	opts := simOpts()
	opts.Interceptors = ics
	err := mpi.RunOpt(n, opts, func(p *mpi.Proc) {
		ring(10)(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	file, stats := pilgrim.Finalize(tracers)
	if stats.TotalCalls != int64(n*(2+2*10)) { // Init+Finalize + 2 calls/iter
		t.Fatalf("TotalCalls = %d", stats.TotalCalls)
	}
	if err := pilgrim.VerifyLossless(file, tracers); err != nil {
		t.Fatal(err)
	}
	// Relative encoding folds the ring into 3 signature classes:
	// interior ranks (deltas ±1) plus the two wrap boundaries, whose
	// deltas are ∓(n-1) — the 1-D analogue of the paper's 9 classes
	// for a 2-D stencil and 27 for the periodic 3-D stencil (§4.1).
	if stats.UniqueCFGs != 3 {
		t.Errorf("ring should produce 3 unique grammars, got %d", stats.UniqueCFGs)
	}
}

func TestDecodeRankContents(t *testing.T) {
	file, _, err := pilgrim.Run(4, pilgrim.Options{}, ring(3))
	if err != nil {
		t.Fatal(err)
	}
	calls, err := pilgrim.DecodeRank(file, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per rank: Init, then 3×(Sendrecv, Allreduce), Finalize.
	if len(calls) != 2+6 {
		t.Fatalf("decoded %d calls", len(calls))
	}
	if calls[0].Func.Name() != "MPI_Init" {
		t.Errorf("first call = %s", calls[0].Func.Name())
	}
	if calls[1].Func.Name() != "MPI_Sendrecv" {
		t.Errorf("second call = %s", calls[1].Func.Name())
	}
	if calls[len(calls)-1].Func.Name() != "MPI_Finalize" {
		t.Errorf("last call = %s", calls[len(calls)-1].Func.Name())
	}
	// The Sendrecv dest is relative +1: resolving against rank 2 gives 3.
	sr := calls[1]
	if got := sr.Args[3].Resolve(2); got != 3 {
		t.Errorf("dest resolves to %d, want 3", got)
	}
	if got := sr.Args[8].Resolve(2); got != 1 {
		t.Errorf("source resolves to %d, want 1", got)
	}
}

func TestTraceFileRoundtrip(t *testing.T) {
	file, _, err := pilgrim.Run(4, pilgrim.Options{TimingMode: pilgrim.TimingLossy}, ring(5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ring.pilgrim")
	if err := file.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pilgrim.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRanks != file.NumRanks || loaded.TimingMode != file.TimingMode {
		t.Fatal("header mismatch after roundtrip")
	}
	for r := 0; r < 4; r++ {
		a, err1 := pilgrim.DecodeRank(file, r)
		b, err2 := pilgrim.DecodeRank(loaded, r)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("rank %d: %d vs %d calls", r, len(a), len(b))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Fatalf("rank %d call %d differs after roundtrip", r, i)
			}
			if a[i].TStart != b[i].TStart || a[i].TEnd != b[i].TEnd {
				t.Fatalf("rank %d call %d timing differs after roundtrip", r, i)
			}
		}
	}
	fi, _ := os.Stat(path)
	if int(fi.Size()) != file.SizeBytes() {
		t.Errorf("SizeBytes %d != on-disk %d", file.SizeBytes(), fi.Size())
	}
}

func TestConstantTraceSizeAcrossIterations(t *testing.T) {
	// §4.1: for a regular code the trace size must not grow with the
	// number of iterations (the run-length grammar holds the count).
	sizes := map[int]int{}
	for _, iters := range []int{10, 100, 1000} {
		file, _, err := pilgrim.Run(4, pilgrim.Options{}, ring(iters))
		if err != nil {
			t.Fatal(err)
		}
		sizes[iters] = file.SizeBytes()
	}
	// The grammar structure is constant; only the run-length counters
	// grow, by a logarithmic number of bits (§2.2).
	if sizes[1000]-sizes[10] > 16 {
		t.Errorf("trace size grew more than counter width with iterations: %v", sizes)
	}
}

func TestConstantTraceSizeAcrossRanks(t *testing.T) {
	// §4.1: a periodic ring has one communication pattern; beyond a
	// handful of ranks the trace size must not grow with P.
	sizes := map[int]int{}
	for _, n := range []int{8, 16, 32, 64} {
		file, _, err := pilgrim.Run(n, pilgrim.Options{}, ring(20))
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = file.SizeBytes()
	}
	// All signature classes exist once every wrap/tag boundary case
	// has appeared; beyond that only the aggregated call counters in
	// the CST widen (logarithmically, as varints).
	if sizes[32] != sizes[16] || sizes[64]-sizes[16] > 8 {
		t.Errorf("trace size grew with ranks on a symmetric ring: %v", sizes)
	}
}

func TestLossyTimingVerifies(t *testing.T) {
	n := 4
	tracers := make([]*pilgrim.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil,
			pilgrim.Options{TimingMode: pilgrim.TimingLossy, TimingBase: 1.2, Verify: true})
		ics[i] = tracers[i]
	}
	opts := simOpts()
	opts.Interceptors = ics
	if err := mpi.RunOpt(n, opts, ring(25)); err != nil {
		t.Fatal(err)
	}
	file, _ := pilgrim.Finalize(tracers)
	if file.TimingMode != trace.TimingLossy {
		t.Fatal("timing mode lost")
	}
	if err := pilgrim.VerifyLossless(file, tracers); err != nil {
		t.Fatal(err)
	}
}

func TestNondeterministicWaitanyStillLossless(t *testing.T) {
	// The paper's §1 motivating example: completion order varies, but
	// the trace must capture the actual order and stay decodable.
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		n := p.Size()
		buf := p.Alloc(4 * n)
		if p.Rank() == 0 {
			reqs := make([]*mpi.Request, n-1)
			for i := 1; i < n; i++ {
				reqs[i-1], _ = p.Irecv(buf.Ptr(4*i), 1, mpi.Int, i, 5, w)
			}
			remaining := len(reqs)
			for remaining > 0 {
				idx, _ := p.Testsome(reqs, make([]mpi.Status, len(reqs)))
				for _, i := range idx {
					reqs[i] = nil
					remaining--
				}
			}
		} else {
			p.Compute(int64(p.Rank()) * 1000)
			p.Send(buf.Ptr(0), 1, mpi.Int, 0, 5, w)
		}
		p.Finalize()
	}
	n := 5
	tracers := make([]*pilgrim.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil, pilgrim.Options{Verify: true})
		ics[i] = tracers[i]
	}
	opts := simOpts()
	opts.Interceptors = ics
	if err := mpi.RunOpt(n, opts, body); err != nil {
		t.Fatal(err)
	}
	file, _ := pilgrim.Finalize(tracers)
	if err := pilgrim.VerifyLossless(file, tracers); err != nil {
		t.Fatal(err)
	}
	// Rank 0 must have recorded its Testsome calls (which ScalaTrace
	// and Cypress drop, per Table 1).
	calls, err := pilgrim.DecodeRank(file, 0)
	if err != nil {
		t.Fatal(err)
	}
	testsomes := 0
	for _, c := range calls {
		if c.Func.Name() == "MPI_Testsome" {
			testsomes++
		}
	}
	if testsomes == 0 {
		t.Fatal("Testsome calls missing from the trace")
	}
}

func TestCommCreationTracedWithGlobalIDs(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		sub, _ := p.CommSplit(w, p.Rank()%2, p.Rank())
		buf := p.Alloc(8)
		out := p.Alloc(8)
		p.Allreduce(buf.Ptr(0), out.Ptr(0), 1, mpi.Double, mpi.OpSum, sub)
		p.CommFree(sub)
		p.Finalize()
	}
	file, stats, err := pilgrim.Run(4, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	// All ranks created one comm; both halves allreduce over the
	// world-wide max, so the two split comms get distinct ids and
	// every rank's Allreduce record carries its own comm's id.
	calls0, _ := pilgrim.DecodeRank(file, 0)
	calls1, _ := pilgrim.DecodeRank(file, 1)
	id0, id1 := int64(-9), int64(-9)
	for _, c := range calls0 {
		if c.Func.Name() == "MPI_Allreduce" {
			id0 = c.Args[5].I
		}
	}
	for _, c := range calls1 {
		if c.Func.Name() == "MPI_Allreduce" {
			id1 = c.Args[5].I
		}
	}
	if id0 != 2 || id1 != 2 {
		// Disjoint groups may (and here do) receive the same id: the
		// paper's algorithm only guarantees per-process uniqueness and
		// group-wide agreement (§3.3.1). Both halves see max=1, so
		// both new comms get id 2 — which also helps the two halves'
		// grammars stay identical.
		t.Fatalf("split comm ids = %d, %d, want 2, 2", id0, id1)
	}
	_ = stats
}

func TestCommIdupTracedAndResolved(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		nc, req, err := p.CommIdup(w)
		if err != nil {
			panic(err)
		}
		p.Wait(req, nil)
		buf := p.Alloc(8)
		out := p.Alloc(8)
		p.Allreduce(buf.Ptr(0), out.Ptr(0), 1, mpi.Double, mpi.OpSum, nc)
		p.Finalize()
	}
	file, _, err := pilgrim.Run(4, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	calls, _ := pilgrim.DecodeRank(file, 0)
	var allreduceCommID int64 = -9
	for _, c := range calls {
		if c.Func.Name() == "MPI_Allreduce" {
			allreduceCommID = c.Args[5].I
		}
	}
	if allreduceCommID != 2 {
		t.Fatalf("idup comm id in later use = %d, want 2", allreduceCommID)
	}
}

func TestIdenticalGrammarFastPath(t *testing.T) {
	// All ranks symmetric -> 1 unique grammar; trace size must be far
	// below the sum of per-rank grammar sizes.
	n := 16
	file, stats, err := pilgrim.Run(n, pilgrim.Options{}, ring(50))
	if err != nil {
		t.Fatal(err)
	}
	// 3 wrap classes + 1 tag==rank artifact (tag 7 == rank 7).
	if stats.UniqueCFGs > 4 {
		t.Fatalf("unique grammars = %d", stats.UniqueCFGs)
	}
	if len(file.Grammars) != stats.UniqueCFGs {
		t.Fatalf("stored grammars = %d", len(file.Grammars))
	}
	idx, err := file.GrammarIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != n {
		t.Fatalf("rank map covers %d ranks", len(idx))
	}
}

func TestStackVariableFallback(t *testing.T) {
	body := func(p *mpi.Proc) {
		p.Init()
		sv := p.StackVar(8)
		out := p.Alloc(8)
		p.Allreduce(sv, out.Ptr(0), 1, mpi.Double, mpi.OpSum, p.World())
		p.Finalize()
	}
	file, _, err := pilgrim.Run(2, pilgrim.Options{}, body)
	if err != nil {
		t.Fatal(err)
	}
	calls, _ := pilgrim.DecodeRank(file, 0)
	var found bool
	for _, c := range calls {
		if c.Func.Name() == "MPI_Allreduce" {
			if c.Args[0].String() == "stack0" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("stack buffer not encoded with the conservative fallback")
	}
}

func TestFinalizeEmpty(t *testing.T) {
	file, stats := pilgrim.Finalize(nil)
	if stats.TotalCalls != 0 {
		t.Fatal("nonzero calls for empty finalize")
	}
	var buf bytes.Buffer
	if _, err := file.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRanks != 0 {
		t.Fatal("bad empty roundtrip")
	}
}
