package pilgrim_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (the per-figure sweeps delegate to internal/experiments,
// the same code behind cmd/pilgrim-bench), plus component
// microbenchmarks for the compression pipeline itself. Trace sizes are
// reported as custom metrics so `go test -bench` output doubles as the
// figure data.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/internal/collect"
	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/experiments"
	"github.com/hpcrepro/pilgrim/internal/mpispec"
	"github.com/hpcrepro/pilgrim/internal/replay"
	"github.com/hpcrepro/pilgrim/internal/sequitur"
	"github.com/hpcrepro/pilgrim/internal/sig"
	"github.com/hpcrepro/pilgrim/internal/workloads"
	"github.com/hpcrepro/pilgrim/mpi"
)

// --- Table / figure regeneration ---------------------------------------------

func BenchmarkTable1Coverage(b *testing.B) {
	var t1 experiments.Table1
	for i := 0; i < b.N; i++ {
		t1 = experiments.RunTable1()
	}
	b.ReportMetric(float64(t1.Pilgrim), "pilgrim-funcs")
	b.ReportMetric(float64(t1.ScalaTrace), "scalatrace-funcs")
	b.ReportMetric(float64(t1.Cypress), "cypress-funcs")
}

func BenchmarkFigStencil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunStencil(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := r.D2.Points[len(r.D2.Points)-1]
			b.ReportMetric(float64(last.PilgrimB), "bytes@maxP")
		}
	}
}

func BenchmarkFigOSU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOSU(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5NPB(b *testing.B) {
	for _, name := range []string{"is", "mg", "cg", "lu", "sp", "bt"} {
		b.Run(name, func(b *testing.B) {
			procs := 16
			iters := 10
			var pt experiments.Point
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunBoth(name, procs, iters)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.PilgrimB), "pilgrim-B")
			b.ReportMetric(float64(pt.ScalaB), "scalatrace-B")
		})
	}
}

func BenchmarkFig6Flash(b *testing.B) {
	for _, name := range []string{"sedov", "cellular", "stirturb"} {
		b.Run(name, func(b *testing.B) {
			var pt experiments.Point
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunBoth(name, 16, 100)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.PilgrimB), "pilgrim-B")
			b.ReportMetric(float64(pt.ScalaB), "scalatrace-B")
		})
	}
}

func BenchmarkFig7Overhead(b *testing.B) {
	// Same methodology as the figure: Compute burns real CPU so the
	// overhead denominator reflects an application, not an empty shell.
	simOpts := mpi.Options{ComputeFactor: 0.25}
	for _, name := range []string{"sedov", "cellular", "stirturb"} {
		b.Run(name, func(b *testing.B) {
			var base, withP int64
			for i := 0; i < b.N; i++ {
				var err error
				base, err = experiments.RunBaseSim(name, 16, 50, simOpts)
				if err != nil {
					b.Fatal(err)
				}
				pt, err := experiments.RunPilgrimSim(name, 16, 50, pilgrim.Options{}, simOpts)
				if err != nil {
					b.Fatal(err)
				}
				withP = pt.PilgrimNs
			}
			if base > 0 {
				b.ReportMetric(100*float64(withP-base)/float64(base), "overhead-%")
			}
		})
	}
}

func BenchmarkFig8Decomposition(b *testing.B) {
	var r experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunFig8(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(r.Points) > 0 {
		p := r.Points[0]
		tot := p.IntraNs + p.CSTMergeNs + p.CFGMergeNs
		if tot > 0 {
			b.ReportMetric(100*float64(p.IntraNs)/float64(tot), "intra-%")
			b.ReportMetric(100*float64(p.CFGMergeNs)/float64(tot), "cfg-merge-%")
		}
	}
}

func BenchmarkFig9MILC(b *testing.B) {
	var r experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunFig9(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if n := len(r.Weak.Points); n > 0 {
		b.ReportMetric(float64(r.Weak.Points[n-1].PilgrimB), "weak-bytes@maxP")
	}
}

func BenchmarkFig10Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(r.Series) > 0 {
			pts := r.Series[0].Points
			b.ReportMetric(float64(pts[len(pts)-1].IntB), "interval-B")
			b.ReportMetric(float64(pts[len(pts)-1].DurB), "duration-B")
		}
	}
}

// BenchmarkCollectIngest measures the networked collection path: one
// traced run's snapshots streamed through a loopback collector, merged
// on arrival, finalized, and fetched back. The custom metrics compare
// what crosses the wire to the raw and final trace sizes.
func BenchmarkCollectIngest(b *testing.B) {
	var pt experiments.CollectPoint
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCollect(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		pt = r.Points[len(r.Points)-1]
	}
	b.ReportMetric(float64(pt.WireB), "wire-B")
	b.ReportMetric(float64(pt.TraceB), "trace-B")
	b.ReportMetric(pt.SnapsPerSec, "snaps/s")
	b.ReportMetric(pt.MBPerSec, "MB/s")
	b.ReportMetric(float64(pt.JournalNs), "journal-ns")
	b.ReportMetric(pt.JournalPct, "journal-%")
	b.ReportMetric(pt.ObsPct, "obs-%")
}

// BenchmarkCollectJournalIngest isolates the durability tax: the same
// snapshot stream ingested by a journaling collector at each fsync
// policy. journal-% on BenchmarkCollectIngest tracks the -journal-sync
// =off overhead, which the design budgets at under 10%.
func BenchmarkCollectJournalIngest(b *testing.B) {
	for _, mode := range []collect.SyncMode{collect.SyncOff, collect.SyncBatch, collect.SyncAlways} {
		b.Run(string(mode), func(b *testing.B) {
			snaps := benchSnapshots(b, 8)
			dir := b.TempDir()
			srv, err := collect.Start(collect.Config{Listen: "127.0.0.1:0", OutDir: dir, JournalSync: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := &collect.Client{
					Addr: srv.Addr(),
					Run:  collect.RunInfo{RunID: fmt.Sprintf("bench-%s-%d", mode, i), WorldSize: len(snaps)},
				}
				if _, err := c.Collect(snaps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSnapshots traces a small stencil run and returns its per-rank
// snapshots for replaying through collectors.
func benchSnapshots(b *testing.B, n int) []*core.Snapshot {
	b.Helper()
	tracers := make([]*core.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = core.NewTracer(i, nil, core.Options{})
		ics[i] = tracers[i]
	}
	body, err := workloads.Get("stencil2d", 3, n)
	if err != nil {
		b.Fatal(err)
	}
	err = mpi.RunOpt(n, mpi.Options{Interceptors: ics}, func(p *mpi.Proc) {
		core.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err != nil {
		b.Fatal(err)
	}
	snaps := make([]*core.Snapshot, n)
	for i, tr := range tracers {
		snaps[i] = tr.Snapshot()
	}
	return snaps
}

// --- Component microbenchmarks -------------------------------------------------

func BenchmarkSequiturAppendLoop(b *testing.B) {
	g := sequitur.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Append(int32(i % 7))
	}
}

func BenchmarkSequiturAppendRandom(b *testing.B) {
	g := sequitur.New()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Append(int32(rng.Intn(64)))
	}
}

func BenchmarkEncoderSend(b *testing.B) {
	e := sig.NewEncoder(0, nil)
	e.MemAlloc(0x1000, 1<<16, 0)
	rec := &mpispec.CallRecord{Func: mpispec.FSend, Args: []mpispec.Value{
		{Kind: mpispec.KPtr, I: 0x1000},
		{Kind: mpispec.KInt, I: 64},
		{Kind: mpispec.KDatatype, I: 18},
		{Kind: mpispec.KRank, I: 1},
		{Kind: mpispec.KTag, I: 999},
		{Kind: mpispec.KComm, I: 1, Arr: []int64{0}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Encode(rec)
	}
}

func BenchmarkTracerPost(b *testing.B) {
	tr := pilgrim.NewTracer(0, nil, pilgrim.Options{})
	tr.MemAlloc(0x1000, 1<<16, 0)
	rec := &mpispec.CallRecord{Func: mpispec.FSend, Args: []mpispec.Value{
		{Kind: mpispec.KPtr, I: 0x1000},
		{Kind: mpispec.KInt, I: 64},
		{Kind: mpispec.KDatatype, I: 18},
		{Kind: mpispec.KRank, I: 1},
		{Kind: mpispec.KTag, I: 999},
		{Kind: mpispec.KComm, I: 1, Arr: []int64{0}},
	}, TStart: 0, TEnd: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Post(rec)
	}
}

// BenchmarkTracerPostMetrics is BenchmarkTracerPost with a metrics
// collector attached: the delta between the two is the per-call cost
// of the instrumented pipeline (stage timers + histograms + counters).
func BenchmarkTracerPostMetrics(b *testing.B) {
	tr := pilgrim.NewTracer(0, nil, pilgrim.Options{Collector: pilgrim.NewMetricsCollector()})
	tr.MemAlloc(0x1000, 1<<16, 0)
	rec := &mpispec.CallRecord{Func: mpispec.FSend, Args: []mpispec.Value{
		{Kind: mpispec.KPtr, I: 0x1000},
		{Kind: mpispec.KInt, I: 64},
		{Kind: mpispec.KDatatype, I: 18},
		{Kind: mpispec.KRank, I: 1},
		{Kind: mpispec.KTag, I: 999},
		{Kind: mpispec.KComm, I: 1, Arr: []int64{0}},
	}, TStart: 0, TEnd: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Post(rec)
	}
}

func BenchmarkCSTMerge64Ranks(b *testing.B) {
	mk := func(rank int) *cst.Table {
		t := cst.New()
		for i := 0; i < 200; i++ {
			t.Add([]byte(fmt.Sprintf("shared-%d", i)), 100)
		}
		for i := 0; i < 20; i++ {
			t.Add([]byte(fmt.Sprintf("rank%d-%d", rank, i)), 100)
		}
		return t
	}
	tables := make([]*cst.Table, 64)
	for r := range tables {
		tables[r] = mk(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cst.MergePairwise(tables)
	}
}

// benchmarkFinalize compares the sequential and parallel finalize
// pipeline over deterministic synthetic snapshots at one rank count;
// on a multi-core runner the "par" sub-benchmark should beat "seq" by
// roughly the core count once the merge tree dominates.
func benchmarkFinalize(b *testing.B, procs int) {
	snaps := experiments.SyntheticSnapshots(procs)
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{"par", 0}, // GOMAXPROCS
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := core.Options{FinalizeWorkers: cfg.workers}
			b.ReportAllocs()
			b.ResetTimer()
			var stats core.FinalizeStats
			for i := 0; i < b.N; i++ {
				_, stats = core.FinalizeSnapshots(snaps, opts, nil)
			}
			b.ReportMetric(float64(stats.GlobalCST), "cst-entries")
			b.ReportMetric(float64(stats.UniqueCFGs), "unique-cfgs")
		})
	}
}

func BenchmarkFinalize64(b *testing.B)   { benchmarkFinalize(b, 64) }
func BenchmarkFinalize1024(b *testing.B) { benchmarkFinalize(b, 1024) }
func BenchmarkFinalize4096(b *testing.B) { benchmarkFinalize(b, 4096) }

func BenchmarkTraceStencil64(b *testing.B) {
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 20})
	var calls int64
	for i := 0; i < b.N; i++ {
		_, stats, err := pilgrim.Run(64, pilgrim.Options{}, body)
		if err != nil {
			b.Fatal(err)
		}
		calls = stats.TotalCalls
	}
	b.ReportMetric(float64(calls), "calls/op")
}

func BenchmarkDecodeRank(b *testing.B) {
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 100})
	file, _, err := pilgrim.Run(16, pilgrim.Options{}, body)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pilgrim.DecodeRank(file, i%16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceFileWrite(b *testing.B) {
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 100})
	file, _, err := pilgrim.Run(16, pilgrim.Options{}, body)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := file.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	// One benchmark per encoding optimization: trace the 2D stencil
	// with the optimization disabled and report the trace size blowup.
	configs := []struct {
		name string
		enc  sig.Options
	}{
		{"full", sig.Options{}},
		{"no-relative-ranks", sig.Options{NoRelativeRanks: true}},
		{"no-request-pools", sig.Options{SharedRequestPool: true}},
		{"no-pointer-tracking", sig.Options{NoPointerTracking: true}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			body := workloads.Stencil2D(workloads.StencilConfig{Iters: 20})
			var bytes int
			for i := 0; i < b.N; i++ {
				file, _, err := pilgrim.Run(16, pilgrim.Options{Encoding: cfg.enc}, body)
				if err != nil {
					b.Fatal(err)
				}
				bytes = file.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "trace-B")
		})
	}
}

func BenchmarkReplayRoundtrip(b *testing.B) {
	body := workloads.Stencil2D(workloads.StencilConfig{Iters: 20})
	file, _, err := pilgrim.Run(9, pilgrim.Options{}, body)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := replay.Run(file, mpi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
