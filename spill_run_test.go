package pilgrim_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	pilgrim "github.com/hpcrepro/pilgrim"
)

// readManifest parses a spill directory's MANIFEST.json.
func readManifest(t *testing.T, dir string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunSimSpillDir runs a local trace through the bounded-memory
// spill finalize: every call must still decode, and the spill
// directory must be left behind as a self-describing, finalized wire
// recording.
func TestRunSimSpillDir(t *testing.T) {
	dir := t.TempDir()
	const n, iters = 6, 10
	opts := pilgrim.Options{SpillDir: dir, MaxResidentSnapshots: 2}
	file, stats, err := pilgrim.RunSim(n, opts, simOpts(), ring(iters))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (2 + 2*iters)); stats.TotalCalls != want {
		t.Fatalf("TotalCalls = %d, want %d", stats.TotalCalls, want)
	}
	for r := 0; r < n; r++ {
		calls, err := pilgrim.DecodeRank(file, r)
		if err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
		if len(calls) != 2+2*iters {
			t.Fatalf("rank %d decoded %d calls, want %d", r, len(calls), 2+2*iters)
		}
	}
	m := readManifest(t, filepath.Join(dir, "local"))
	if m["state"] != "finalized" || m["nranks"] != float64(n) {
		t.Fatalf("spill manifest = %v", m)
	}
}

// TestRunSimSpillSalvage checks the failure path still salvages when
// finalizing through the spill, and marks the spill directory
// salvaged.
func TestRunSimSpillSalvage(t *testing.T) {
	dir := t.TempDir()
	opts := pilgrim.Options{SpillDir: dir, MaxResidentSnapshots: 2}
	file, stats, err := pilgrim.RunSim(4, opts, crashPlan(2, 20), ring(50))
	if err == nil {
		t.Fatal("expected the injected crash to fail the run")
	}
	if file == nil {
		t.Fatal("no salvaged trace alongside the error")
	}
	if file.Salvage == nil {
		t.Fatal("salvaged trace carries no salvage info")
	}
	if len(file.Salvage.FailedRanks) != 1 || file.Salvage.FailedRanks[0] != 2 {
		t.Errorf("failed ranks = %v, want [2]", file.Salvage.FailedRanks)
	}
	if stats.TotalCalls <= 0 {
		t.Errorf("salvage captured no calls")
	}
	for r := 0; r < 4; r++ {
		if _, err := pilgrim.DecodeRank(file, r); err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
	}
	m := readManifest(t, filepath.Join(dir, "local"))
	if m["state"] != "salvaged" {
		t.Fatalf("spill manifest state = %v, want salvaged", m["state"])
	}
}
