package pilgrim_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	pilgrim "github.com/hpcrepro/pilgrim"
	"github.com/hpcrepro/pilgrim/mpi"
)

func crashPlan(rank int, atCall int64) mpi.Options {
	return mpi.Options{
		Timeout:   60 * time.Second,
		FaultPlan: &mpi.FaultPlan{Faults: []mpi.Fault{{Kind: mpi.FaultCrash, Rank: rank, AtCall: atCall}}},
	}
}

func TestRunSimSalvagesOnCrash(t *testing.T) {
	file, stats, err := pilgrim.RunSim(4, pilgrim.Options{Verify: true}, crashPlan(2, 20), ring(50))
	if err == nil {
		t.Fatal("expected the injected crash to fail the run")
	}
	if file == nil {
		t.Fatal("no salvaged trace alongside the error")
	}
	if file.Salvage == nil {
		t.Fatal("salvaged trace carries no salvage info")
	}
	if len(file.Salvage.FailedRanks) != 1 || file.Salvage.FailedRanks[0] != 2 {
		t.Errorf("failed ranks = %v, want [2] (revoked survivors are not failures)", file.Salvage.FailedRanks)
	}
	if file.Salvage.Reason == "" {
		t.Error("salvage reason empty")
	}
	// The crashed rank recorded fewer calls than the survivors could.
	if file.Salvage.Calls[2] <= 0 || stats.TotalCalls <= 0 {
		t.Errorf("salvage calls = %v (stats %d), want positive counts", file.Salvage.Calls, stats.TotalCalls)
	}
	// Every rank's partial stream must decode.
	for r := 0; r < 4; r++ {
		calls, err := pilgrim.DecodeRank(file, r)
		if err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
		if int64(len(calls)) != file.Salvage.Calls[r] {
			t.Errorf("rank %d decoded %d calls, salvage recorded %d", r, len(calls), file.Salvage.Calls[r])
		}
	}
}

func TestSalvageLosslessToFailurePoint(t *testing.T) {
	// Wire the tracers manually so VerifySalvaged can compare the
	// salvaged trace against each rank's captured raw stream.
	const n = 4
	tracers := make([]*pilgrim.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil, pilgrim.Options{Verify: true})
		ics[i] = tracers[i]
	}
	opts := crashPlan(1, 15)
	opts.Interceptors = ics
	body := ring(50)
	err := mpi.RunOpt(n, opts, func(p *mpi.Proc) {
		pilgrim.BindOOB(tracers[p.Rank()], p)
		body(p)
	})
	if err == nil {
		t.Fatal("expected the injected crash to fail the run")
	}
	file, stats := pilgrim.SalvageFinalize(tracers, err)
	if stats.TotalCalls == 0 {
		t.Fatal("salvage captured no calls")
	}
	if err := pilgrim.VerifySalvaged(file, tracers); err != nil {
		t.Fatalf("salvaged trace is not lossless to the failure point: %v", err)
	}
	// The dead rank's stream is truncated exactly at the failure point:
	// the crash fires at call entry 15, so 14 calls were intercepted.
	if file.Salvage.Calls[1] != 14 {
		t.Errorf("crashed rank captured %d calls, want 14 (died entering call 15)", file.Salvage.Calls[1])
	}
}

func TestSalvageRoundtripsThroughDisk(t *testing.T) {
	file, _, err := pilgrim.RunSim(3, pilgrim.Options{}, crashPlan(0, 10), ring(30))
	if err == nil || file == nil {
		t.Fatal("expected a salvaged trace")
	}
	path := t.TempDir() + "/partial.pilgrim"
	if err := file.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := pilgrim.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Salvage == nil || got.Salvage.Reason != file.Salvage.Reason {
		t.Fatalf("salvage info lost on disk roundtrip: %+v", got.Salvage)
	}
	for r := 0; r < 3; r++ {
		a, err1 := pilgrim.DecodeRank(file, r)
		b, err2 := pilgrim.DecodeRank(got, r)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("rank %d decoded lengths differ after reload", r)
		}
	}
}

func TestSalvageDeterministicAcrossRuns(t *testing.T) {
	// Same seed, same fault plan: the two salvaged traces must decode
	// to identical call streams on every rank.
	decode := func() [][]string {
		opts := crashPlan(2, 25)
		opts.Seed = 7
		file, _, err := pilgrim.RunSim(4, pilgrim.Options{}, opts, ring(60))
		if err == nil || file == nil {
			t.Fatal("expected a salvaged trace")
		}
		out := make([][]string, 4)
		for r := 0; r < 4; r++ {
			calls, err := pilgrim.DecodeRank(file, r)
			if err != nil {
				t.Fatalf("decode rank %d: %v", r, err)
			}
			for _, c := range calls {
				out[r] = append(out[r], c.Decoded.String())
			}
		}
		return out
	}
	a, b := decode(), decode()
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("rank %d stream lengths differ across identical runs: %d vs %d", r, len(a[r]), len(b[r]))
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d call %d differs across identical runs:\n  %s\n  %s", r, i, a[r][i], b[r][i])
			}
		}
	}
}

func TestConcurrentSnapshotWhileTracing(t *testing.T) {
	// A monitor goroutine snapshots every tracer while the ranks are
	// actively tracing; meaningful chiefly under -race. Each snapshot
	// must itself be internally consistent (grammar expands to the
	// snapshot's call count).
	const n = 4
	tracers := make([]*pilgrim.Tracer, n)
	ics := make([]mpi.Interceptor, n)
	for i := range tracers {
		tracers[i] = pilgrim.NewTracer(i, nil, pilgrim.Options{})
		ics[i] = tracers[i]
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range tracers {
				s := tr.Snapshot()
				if got := int64(len(s.Grammar.Expand(0))); got != s.Calls {
					t.Errorf("snapshot rank %d: grammar expands to %d calls, header says %d", s.Rank, got, s.Calls)
					return
				}
			}
		}
	}()
	body := ring(40)
	opts := mpi.Options{Timeout: 60 * time.Second, Interceptors: ics}
	if err := mpi.RunOpt(n, opts, func(p *mpi.Proc) {
		pilgrim.BindOOB(tracers[p.Rank()], p)
		body(p)
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	// After the run the snapshot path and the normal finalize must agree.
	file, stats := pilgrim.Finalize(tracers)
	if stats.TotalCalls == 0 {
		t.Fatal("no calls traced")
	}
	for r := 0; r < n; r++ {
		if _, err := pilgrim.DecodeRank(file, r); err != nil {
			t.Fatalf("decode rank %d: %v", r, err)
		}
	}
}

func TestSalvageAbortKeepsTrace(t *testing.T) {
	// MPI_Abort mid-run: the salvaged trace tags the aborting rank.
	file, _, err := pilgrim.RunSim(3, pilgrim.Options{}, simOpts(), func(p *mpi.Proc) {
		p.Init()
		w := p.World()
		buf := p.Alloc(8)
		for i := 0; i < 10; i++ {
			p.Allreduce(buf.Ptr(0), buf.Ptr(0), 1, mpi.Double, mpi.OpSum, w)
			if i == 5 && p.Rank() == 1 {
				p.Abort(w, 99)
			}
		}
		buf.Free()
		p.Finalize()
	})
	if err == nil {
		t.Fatal("expected abort to fail the run")
	}
	var ae *mpi.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v does not carry the abort", err)
	}
	if file == nil || file.Salvage == nil {
		t.Fatal("no salvaged trace after abort")
	}
	if len(file.Salvage.FailedRanks) != 1 || file.Salvage.FailedRanks[0] != 1 {
		t.Errorf("failed ranks = %v, want [1]", file.Salvage.FailedRanks)
	}
}
