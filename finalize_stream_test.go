package pilgrim_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/hpcrepro/pilgrim/internal/core"
	"github.com/hpcrepro/pilgrim/internal/cst"
	"github.com/hpcrepro/pilgrim/internal/spill"
	"github.com/hpcrepro/pilgrim/internal/trace"
)

// The streaming, bounded-memory finalize must be byte-identical to the
// in-memory finalize for every batch size and worker count: batching
// only changes when merge work happens, never what it computes, and
// every ordering-sensitive pass stays sequential in rank order. These
// tests pin that over the golden cases — plain, lossy timing, salvage,
// and the collector's premerged path — by spilling the snapshots
// through internal/spill (fresh decodes per fetch, exactly as the
// finalize's table-absorbing ownership contract requires).

// streamedSweep spills snaps to disk and finalizes the spill at
// several batch sizes and worker counts, failing unless every trace is
// byte-identical to the in-memory sequential finalize of the same
// snapshots.
func streamedSweep(t *testing.T, snaps []*core.Snapshot, opts core.Options, info *trace.SalvageInfo) {
	t.Helper()
	n := len(snaps)
	seqOpts := opts
	seqOpts.FinalizeWorkers = 1
	seq, _ := core.FinalizeSnapshots(snaps, seqOpts, info)
	want := traceBytes(t, seq)

	w, err := spill.NewWriter(t.TempDir(), "identity", n, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, s := range snaps {
		if err := w.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int{1, 3, n} {
		for _, workers := range []int{1, 0} {
			sopts := opts
			sopts.MaxResidentSnapshots = k
			sopts.FinalizeWorkers = workers
			f, _, err := core.FinalizeStreamed(n, w.Fetch, sopts, info)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", k, workers, err)
			}
			if got := traceBytes(t, f); !bytes.Equal(got, want) {
				t.Errorf("batch=%d workers=%d: streamed trace differs from in-memory sequential (%d vs %d bytes)",
					k, workers, len(got), len(want))
			}
		}
	}
}

func TestFinalizeStreamedByteIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			snaps := snapshotsFor(t, n, core.Options{})
			streamedSweep(t, snaps, core.Options{}, nil)
		})
	}
}

func TestFinalizeStreamedByteIdenticalLossyTiming(t *testing.T) {
	opts := core.Options{TimingMode: trace.TimingLossy, TimingBase: 1.2}
	for _, n := range []int{2, 7, 16} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			snaps := snapshotsFor(t, n, opts)
			streamedSweep(t, snaps, opts, nil)
		})
	}
}

func TestFinalizeStreamedByteIdenticalSalvage(t *testing.T) {
	const n = 7
	snaps := snapshotsFor(t, n, core.Options{})
	info := &trace.SalvageInfo{Reason: "identity test", FailedRanks: []int32{2, 5}, Calls: make([]int64, n)}
	for i, s := range snaps {
		info.Calls[i] = s.Calls
	}
	streamedSweep(t, snaps, core.Options{}, info)
}

// TestFinalizePremergedStreamedByteIdentical covers the collector's
// spilled-payload path: tables merged incrementally in an arbitrary
// arrival order, then a grammar pass streaming the snapshots back in
// bounded batches, must finalize to the same bytes as a local
// in-memory sequential finalize.
func TestFinalizePremergedStreamedByteIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			snaps := snapshotsFor(t, n, core.Options{})
			seq, _ := core.FinalizeSnapshots(snaps, core.Options{FinalizeWorkers: 1}, nil)
			want := traceBytes(t, seq)

			// Feed the incremental merge out of rank order.
			inc := cst.NewIncremental(n)
			stride := 3
			if n%stride == 0 {
				stride = 1
			}
			for i := 0; i < n; i++ {
				r := (i * stride) % n
				if err := inc.Add(r, snaps[r].Table); err != nil {
					t.Fatal(err)
				}
			}
			merged := inc.Result()
			// The premerged grammar pass never reads tables and never
			// mutates snapshots, so a fetch slicing the resident array
			// satisfies the ownership contract.
			fetch := func(start, n int) ([]*core.Snapshot, error) {
				return snaps[start : start+n], nil
			}
			for _, k := range []int{1, 3, n} {
				for _, workers := range []int{1, 0} {
					opts := core.Options{MaxResidentSnapshots: k, FinalizeWorkers: workers}
					f, _, err := core.FinalizePremergedStreamed(n, fetch, merged, 0, opts, nil)
					if err != nil {
						t.Fatalf("batch=%d workers=%d: %v", k, workers, err)
					}
					if got := traceBytes(t, f); !bytes.Equal(got, want) {
						t.Errorf("batch=%d workers=%d: premerged streamed trace differs from local sequential finalize",
							k, workers)
					}
				}
			}
		})
	}
}
